#include "lang/vm.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace ccp::lang {
namespace {

inline double safe_div(double a, double b) { return b == 0.0 ? 0.0 : a / b; }
inline double safe_sqrt(double a) { return a <= 0.0 ? 0.0 : std::sqrt(a); }
inline double safe_log(double a) { return a <= 0.0 ? 0.0 : std::log(a); }
inline double safe_pow(double a, double b) {
  // pow of a negative base with fractional exponent is NaN; clamp to 0
  // (total arithmetic — see vm.hpp).
  const double v = std::pow(a, b);
  return std::isfinite(v) ? v : 0.0;
}

double eval_block_impl(const CodeBlock& block, std::span<double> fold_state,
                       const PktInfo& pkt, std::span<const double> vars,
                       std::vector<double>& scratch) {
  if (block.code.empty()) return 0.0;
  // A nonempty block with no slots cannot have been produced by the
  // compiler (every instruction reads or writes a slot); treat it as
  // degenerate rather than indexing an empty scratch file.
  if (block.n_slots == 0) return 0.0;
  if (scratch.size() < block.n_slots) scratch.resize(block.n_slots);
  double* s = scratch.data();
  const double* k = block.consts.data();

  const Instr* ip = block.code.data();
  const Instr* const end = ip + block.code.size();

// Dispatch. With GCC/Clang, use a computed-goto threaded interpreter:
// each handler jumps straight to the next instruction's handler, giving
// the branch predictor one indirect-branch site per opcode instead of a
// single shared switch dispatch — a sizable win for the per-ACK loop,
// the hottest code in the datapath. Other compilers get an equivalent
// switch loop from the same handler bodies.
#if defined(__GNUC__) || defined(__clang__)
  static const void* const kJump[] = {
      &&lbl_LoadConst, &&lbl_LoadFold, &&lbl_LoadPkt, &&lbl_LoadVar,
      &&lbl_Neg, &&lbl_Not, &&lbl_Sqrt, &&lbl_Abs, &&lbl_Log, &&lbl_Exp,
      &&lbl_Cbrt, &&lbl_Add, &&lbl_Sub, &&lbl_Mul, &&lbl_Div, &&lbl_Pow,
      &&lbl_Min, &&lbl_Max, &&lbl_Lt, &&lbl_Le, &&lbl_Gt, &&lbl_Ge,
      &&lbl_Eq, &&lbl_Ne, &&lbl_And, &&lbl_Or, &&lbl_Select, &&lbl_Ewma,
      &&lbl_StoreFold, &&lbl_AddC, &&lbl_SubC, &&lbl_MulC, &&lbl_DivC,
      &&lbl_MinC, &&lbl_MaxC, &&lbl_LtC, &&lbl_LeC, &&lbl_GtC, &&lbl_GeC,
      &&lbl_EqC, &&lbl_NeC, &&lbl_EwmaC, &&lbl_SelGtz};
  static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                    static_cast<size_t>(OpCode::SelGtz) + 1,
                "jump table must cover every opcode, in enum order");
#define VM_CASE(name) lbl_##name
#define VM_NEXT                                    \
  if (++ip == end) goto vm_done;                   \
  goto* kJump[static_cast<uint8_t>(ip->op)]
#define VM_BEGIN goto* kJump[static_cast<uint8_t>(ip->op)];
#define VM_END vm_done:;
#else
#define VM_CASE(name) case OpCode::name
#define VM_NEXT continue
#define VM_BEGIN                 \
  for (; ip != end; ++ip) {      \
    switch (ip->op) {
#define VM_END \
  }            \
  }
#endif
#define IN (*ip)

  VM_BEGIN
  VM_CASE(LoadConst): s[IN.dst] = k[IN.a]; VM_NEXT;
  VM_CASE(LoadFold): s[IN.dst] = fold_state[IN.a]; VM_NEXT;
  VM_CASE(LoadPkt): s[IN.dst] = pkt.get(static_cast<PktField>(IN.a)); VM_NEXT;
  VM_CASE(LoadVar): s[IN.dst] = vars[IN.a]; VM_NEXT;
  VM_CASE(Neg): s[IN.dst] = -s[IN.a]; VM_NEXT;
  VM_CASE(Not): s[IN.dst] = s[IN.a] == 0.0 ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Sqrt): s[IN.dst] = safe_sqrt(s[IN.a]); VM_NEXT;
  VM_CASE(Abs): s[IN.dst] = std::fabs(s[IN.a]); VM_NEXT;
  VM_CASE(Log): s[IN.dst] = safe_log(s[IN.a]); VM_NEXT;
  VM_CASE(Exp): s[IN.dst] = std::exp(s[IN.a]); VM_NEXT;
  VM_CASE(Cbrt): s[IN.dst] = std::cbrt(s[IN.a]); VM_NEXT;
  VM_CASE(Add): s[IN.dst] = s[IN.a] + s[IN.b]; VM_NEXT;
  VM_CASE(Sub): s[IN.dst] = s[IN.a] - s[IN.b]; VM_NEXT;
  VM_CASE(Mul): s[IN.dst] = s[IN.a] * s[IN.b]; VM_NEXT;
  VM_CASE(Div): s[IN.dst] = safe_div(s[IN.a], s[IN.b]); VM_NEXT;
  VM_CASE(Pow): s[IN.dst] = safe_pow(s[IN.a], s[IN.b]); VM_NEXT;
  VM_CASE(Min): s[IN.dst] = s[IN.a] < s[IN.b] ? s[IN.a] : s[IN.b]; VM_NEXT;
  VM_CASE(Max): s[IN.dst] = s[IN.a] > s[IN.b] ? s[IN.a] : s[IN.b]; VM_NEXT;
  VM_CASE(Lt): s[IN.dst] = s[IN.a] < s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Le): s[IN.dst] = s[IN.a] <= s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Gt): s[IN.dst] = s[IN.a] > s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Ge): s[IN.dst] = s[IN.a] >= s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Eq): s[IN.dst] = s[IN.a] == s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(Ne): s[IN.dst] = s[IN.a] != s[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(And):
    s[IN.dst] = (s[IN.a] != 0.0 && s[IN.b] != 0.0) ? 1.0 : 0.0;
    VM_NEXT;
  VM_CASE(Or):
    s[IN.dst] = (s[IN.a] != 0.0 || s[IN.b] != 0.0) ? 1.0 : 0.0;
    VM_NEXT;
  VM_CASE(Select): s[IN.dst] = s[IN.a] != 0.0 ? s[IN.b] : s[IN.c]; VM_NEXT;
  VM_CASE(Ewma):
    s[IN.dst] = (1.0 - s[IN.c]) * s[IN.a] + s[IN.c] * s[IN.b];
    VM_NEXT;
  VM_CASE(StoreFold): fold_state[IN.a] = s[IN.b]; VM_NEXT;
  // Optimizer superinstructions: right operand from the const pool.
  VM_CASE(AddC): s[IN.dst] = s[IN.a] + k[IN.b]; VM_NEXT;
  VM_CASE(SubC): s[IN.dst] = s[IN.a] - k[IN.b]; VM_NEXT;
  VM_CASE(MulC): s[IN.dst] = s[IN.a] * k[IN.b]; VM_NEXT;
  VM_CASE(DivC): s[IN.dst] = safe_div(s[IN.a], k[IN.b]); VM_NEXT;
  VM_CASE(MinC): s[IN.dst] = s[IN.a] < k[IN.b] ? s[IN.a] : k[IN.b]; VM_NEXT;
  VM_CASE(MaxC): s[IN.dst] = s[IN.a] > k[IN.b] ? s[IN.a] : k[IN.b]; VM_NEXT;
  VM_CASE(LtC): s[IN.dst] = s[IN.a] < k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(LeC): s[IN.dst] = s[IN.a] <= k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(GtC): s[IN.dst] = s[IN.a] > k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(GeC): s[IN.dst] = s[IN.a] >= k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(EqC): s[IN.dst] = s[IN.a] == k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(NeC): s[IN.dst] = s[IN.a] != k[IN.b] ? 1.0 : 0.0; VM_NEXT;
  VM_CASE(EwmaC):
    s[IN.dst] = (1.0 - k[IN.c]) * s[IN.a] + k[IN.c] * s[IN.b];
    VM_NEXT;
  VM_CASE(SelGtz): s[IN.dst] = s[IN.a] > 0.0 ? s[IN.b] : s[IN.c]; VM_NEXT;
  VM_END

#undef IN
#undef VM_BEGIN
#undef VM_END
#undef VM_NEXT
#undef VM_CASE

  return block.result_slot < block.n_slots ? s[block.result_slot] : 0.0;
}

}  // namespace

double eval_block(const CodeBlock& block, std::span<double> fold_state,
                  const PktInfo& pkt, std::span<const double> vars,
                  std::vector<double>& scratch) {
  // Sampled exec-time histogram: 1 in 1024 invocations pays two clock
  // reads; the other 1023 pay one thread-local increment and a test.
  // Per-ACK timing would double the cost of short programs — the VM run
  // itself is only tens of nanoseconds.
  thread_local uint32_t sample_tick = 0;
  if ((++sample_tick & 1023u) == 0 && telemetry::enabled()) [[unlikely]] {
    const uint64_t t0 = telemetry::now_ns();
    const double r = eval_block_impl(block, fold_state, pkt, vars, scratch);
    telemetry::metrics().vm_exec_ns.record(telemetry::now_ns() - t0);
    return r;
  }
  return eval_block_impl(block, fold_state, pkt, vars, scratch);
}

// Instruction-major batch interpreter: one pass over the code, each
// instruction applied across every lane of its struct-of-arrays row
// before moving on. The inner loops are the scalar handler expressions
// verbatim (same safe_* helpers, same operand order), which is what
// makes results bit-identical per lane — and what lets the compiler
// auto-vectorize the pure-arithmetic rows without being asked.
void eval_block_batch(const CodeBlock& block, double* fold_state,
                      const double* pkt, const double* vars, double* scratch,
                      size_t n_lanes) {
  if (block.code.empty() || block.n_slots == 0 || n_lanes == 0) return;
  constexpr size_t L = kBatchLanes;
  const size_t n = n_lanes < L ? n_lanes : L;
  double* s = scratch;
  const double* k = block.consts.data();

// Row pointers are computed per case: `in.a` indexes the const pool for
// LoadConst, a pkt field for LoadPkt, a fold register for StoreFold — a
// shared slot-pointer precomputation would form out-of-range pointers.
#define BROW(base, idx) ((base) + static_cast<size_t>(idx) * L)
#define BLANES for (size_t l = 0; l < n; ++l)

  for (const Instr& in : block.code) {
    double* d = BROW(s, in.dst);
    switch (in.op) {
      case OpCode::LoadConst: {
        const double v = k[in.a];
        BLANES d[l] = v;
      } break;
      case OpCode::LoadFold: {
        const double* f = BROW(fold_state, in.a);
        BLANES d[l] = f[l];
      } break;
      case OpCode::LoadPkt: {
        const double* p = BROW(pkt, in.a);
        BLANES d[l] = p[l];
      } break;
      case OpCode::LoadVar: {
        const double* v = BROW(vars, in.a);
        BLANES d[l] = v[l];
      } break;
      case OpCode::Neg: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = -a[l];
      } break;
      case OpCode::Not: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = a[l] == 0.0 ? 1.0 : 0.0;
      } break;
      case OpCode::Sqrt: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = safe_sqrt(a[l]);
      } break;
      case OpCode::Abs: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = std::fabs(a[l]);
      } break;
      case OpCode::Log: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = safe_log(a[l]);
      } break;
      case OpCode::Exp: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = std::exp(a[l]);
      } break;
      case OpCode::Cbrt: {
        const double* a = BROW(s, in.a);
        BLANES d[l] = std::cbrt(a[l]);
      } break;
      case OpCode::Add: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] + b[l];
      } break;
      case OpCode::Sub: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] - b[l];
      } break;
      case OpCode::Mul: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] * b[l];
      } break;
      case OpCode::Div: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = safe_div(a[l], b[l]);
      } break;
      case OpCode::Pow: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = safe_pow(a[l], b[l]);
      } break;
      case OpCode::Min: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] < b[l] ? a[l] : b[l];
      } break;
      case OpCode::Max: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] > b[l] ? a[l] : b[l];
      } break;
      case OpCode::Lt: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] < b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::Le: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] <= b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::Gt: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] > b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::Ge: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] >= b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::Eq: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] == b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::Ne: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = a[l] != b[l] ? 1.0 : 0.0;
      } break;
      case OpCode::And: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = (a[l] != 0.0 && b[l] != 0.0) ? 1.0 : 0.0;
      } break;
      case OpCode::Or: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        BLANES d[l] = (a[l] != 0.0 || b[l] != 0.0) ? 1.0 : 0.0;
      } break;
      case OpCode::Select: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b), *c = BROW(s, in.c);
        BLANES d[l] = a[l] != 0.0 ? b[l] : c[l];
      } break;
      case OpCode::Ewma: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b), *c = BROW(s, in.c);
        BLANES d[l] = (1.0 - c[l]) * a[l] + c[l] * b[l];
      } break;
      case OpCode::StoreFold: {
        double* f = BROW(fold_state, in.a);
        const double* b = BROW(s, in.b);
        BLANES f[l] = b[l];
      } break;
      case OpCode::AddC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] + kb;
      } break;
      case OpCode::SubC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] - kb;
      } break;
      case OpCode::MulC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] * kb;
      } break;
      case OpCode::DivC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = safe_div(a[l], kb);
      } break;
      case OpCode::MinC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] < kb ? a[l] : kb;
      } break;
      case OpCode::MaxC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] > kb ? a[l] : kb;
      } break;
      case OpCode::LtC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] < kb ? 1.0 : 0.0;
      } break;
      case OpCode::LeC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] <= kb ? 1.0 : 0.0;
      } break;
      case OpCode::GtC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] > kb ? 1.0 : 0.0;
      } break;
      case OpCode::GeC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] >= kb ? 1.0 : 0.0;
      } break;
      case OpCode::EqC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] == kb ? 1.0 : 0.0;
      } break;
      case OpCode::NeC: {
        const double* a = BROW(s, in.a);
        const double kb = k[in.b];
        BLANES d[l] = a[l] != kb ? 1.0 : 0.0;
      } break;
      case OpCode::EwmaC: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b);
        const double kc = k[in.c];
        BLANES d[l] = (1.0 - kc) * a[l] + kc * b[l];
      } break;
      case OpCode::SelGtz: {
        const double *a = BROW(s, in.a), *b = BROW(s, in.b), *c = BROW(s, in.c);
        BLANES d[l] = a[l] > 0.0 ? b[l] : c[l];
      } break;
    }
  }
#undef BLANES
#undef BROW
}

void FoldMachine::install(const CompiledProgram* prog, std::vector<double> vars) {
  if (prog == nullptr) throw std::invalid_argument("FoldMachine: null program");
  if (vars.size() != prog->num_vars()) {
    throw std::invalid_argument("FoldMachine: program expects " +
                                std::to_string(prog->num_vars()) + " vars, got " +
                                std::to_string(vars.size()));
  }
  prog_ = prog;
  vars_ = std::move(vars);
  state_.assign(prog->num_folds(), 0.0);
  before_.assign(prog->urgent_indices.size(), 0.0);
  const PktInfo zero_pkt{};
  eval_block(prog->init_block, state_, zero_pkt, vars_, scratch_);
  init_snapshot_ = state_;

  // Native execution: the JitMode is consulted here, once per install —
  // never on the per-ACK path. Init and control-arg blocks stay on the
  // interpreter (they run rarely); only the per-ACK fold block is
  // lowered. Any compile failure leaves jit_fn_ null and the machine
  // interpreting, exactly as before.
  jit_handle_.reset();
  jit_fn_ = nullptr;
  jit_batch_fn_ = nullptr;
  jit_verify_ = false;
  const jit::JitMode m = jit::mode();
  if (m != jit::JitMode::Off && jit::available() &&
      !prog->fold_block.code.empty()) {
    jit_handle_ = jit::get_or_compile(*prog);
    if (jit_handle_) {
      jit_fn_ = jit::entry(*jit_handle_);
      jit_batch_fn_ = jit::batch_entry(*jit_handle_);
      jit_verify_ = (m == jit::JitMode::Verify);
      // The native code indexes the scratch array directly (memory-slot
      // mode) without the interpreter's lazy resize; presize it here so
      // the per-ACK path stays allocation-free.
      if (scratch_.size() < prog->fold_block.n_slots) {
        scratch_.resize(prog->fold_block.n_slots);
      }
      if (jit_verify_) {
        verify_state_.assign(state_.size(), 0.0);
        verify_scratch_.assign(prog->fold_block.n_slots, 0.0);
      }
    }
  }
}

void FoldMachine::update_vars(std::vector<double> vars) {
  if (prog_ == nullptr) throw std::logic_error("FoldMachine: no program installed");
  if (vars.size() != prog_->num_vars()) {
    throw std::invalid_argument("FoldMachine: var count mismatch");
  }
  vars_ = std::move(vars);
}

void FoldMachine::jit_exec(const PktInfo& pkt) {
  const double* pkt_mem = jit::pkt_ptr(pkt);
  if (!jit_verify_) {
    // Same 1/1024 sampling scheme as eval_block, into the JIT's own
    // histogram so the two engines' latency profiles stay comparable.
    thread_local uint32_t sample_tick = 0;
    if ((++sample_tick & 1023u) == 0 && telemetry::enabled()) [[unlikely]] {
      const uint64_t t0 = telemetry::now_ns();
      jit_fn_(state_.data(), pkt_mem, vars_.data(), scratch_.data());
      telemetry::metrics().jit_exec_ns.record(telemetry::now_ns() - t0);
      return;
    }
    jit_fn_(state_.data(), pkt_mem, vars_.data(), scratch_.data());
    return;
  }
  // Verify: native code folds into a shadow copy of the state, the
  // interpreter folds authoritatively, and the two register files must
  // match bit for bit (as must the result-slot value). The interpreter
  // stays authoritative so a miscompile can skew only the mismatch
  // counter, never the congestion response.
  std::memcpy(verify_state_.data(), state_.data(),
              state_.size() * sizeof(double));
  const double jit_result =
      jit_fn_(verify_state_.data(), pkt_mem, vars_.data(), verify_scratch_.data());
  const double vm_result =
      eval_block(prog_->fold_block, state_, pkt, vars_, scratch_);
  const bool state_ok =
      std::memcmp(verify_state_.data(), state_.data(),
                  state_.size() * sizeof(double)) == 0;
  const bool result_ok = std::bit_cast<uint64_t>(jit_result) ==
                         std::bit_cast<uint64_t>(vm_result);
  if (!(state_ok && result_ok)) [[unlikely]] {
    telemetry::metrics().jit_verify_mismatches.inc();
  }
}

double FoldMachine::eval_control_arg(size_t idx, const PktInfo& pkt) {
  if (prog_ == nullptr) throw std::logic_error("FoldMachine: no program installed");
  return eval_block(prog_->control_args[idx], state_, pkt, vars_, scratch_);
}

void FoldMachine::reset_volatile() {
  if (prog_ == nullptr) return;
  for (size_t i = 0; i < state_.size(); ++i) {
    if (prog_->volatile_regs[i]) state_[i] = init_snapshot_[i];
  }
}

}  // namespace ccp::lang
