#include "lang/sema.hpp"

#include "lang/error.hpp"

namespace ccp::lang {
namespace {

bool is_const(const ExprArena& arena, ExprId id, double* out) {
  const ExprNode& n = arena.at(id);
  if (n.kind == ExprKind::Const) {
    *out = n.constant;
    return true;
  }
  if (n.kind == ExprKind::Unary && n.unary_op == UnaryOp::Neg) {
    double inner;
    if (is_const(arena, n.child[0], &inner)) {
      *out = -inner;
      return true;
    }
  }
  return false;
}

void walk_expr(const Program& prog, ExprId id, std::vector<SemaIssue>& issues,
               std::vector<bool>& fold_used) {
  const ExprNode& n = prog.arena.at(id);
  switch (n.kind) {
    case ExprKind::Const:
    case ExprKind::PktRef:
    case ExprKind::VarRef:
      return;
    case ExprKind::FoldRef:
      if (n.index < fold_used.size()) fold_used[n.index] = true;
      return;
    case ExprKind::Unary:
      walk_expr(prog, n.child[0], issues, fold_used);
      return;
    case ExprKind::Binary: {
      walk_expr(prog, n.child[0], issues, fold_used);
      walk_expr(prog, n.child[1], issues, fold_used);
      if (n.binary_op == BinaryOp::Div) {
        double v;
        if (is_const(prog.arena, n.child[1], &v) && v == 0.0) {
          issues.push_back({SemaIssue::Severity::Error, "division by literal zero"});
        }
      }
      return;
    }
    case ExprKind::Ternary: {
      walk_expr(prog, n.child[0], issues, fold_used);
      walk_expr(prog, n.child[1], issues, fold_used);
      walk_expr(prog, n.child[2], issues, fold_used);
      if (n.ternary_op == TernaryOp::Ewma) {
        double g;
        if (is_const(prog.arena, n.child[2], &g) && (g <= 0.0 || g > 1.0)) {
          issues.push_back({SemaIssue::Severity::Error,
                            "ewma gain must be in (0, 1], got " + std::to_string(g)});
        }
      }
      return;
    }
  }
}

}  // namespace

std::vector<SemaIssue> analyze(const Program& prog) {
  std::vector<SemaIssue> issues;
  std::vector<bool> fold_used(prog.folds.size(), false);

  if (prog.control.empty()) {
    issues.push_back({SemaIssue::Severity::Error,
                      "program has no control block; the datapath would never "
                      "report or change its sending behavior"});
  } else {
    bool has_report = false;
    for (const auto& instr : prog.control) {
      if (instr.op == ControlInstr::Op::Report) has_report = true;
    }
    if (!has_report) {
      issues.push_back({SemaIssue::Severity::Error,
                        "control program never calls Report(); the agent would "
                        "receive no measurements"});
    }
  }

  for (const auto& reg : prog.folds) {
    walk_expr(prog, reg.init, issues, fold_used);
    walk_expr(prog, reg.update, issues, fold_used);
  }
  for (const auto& instr : prog.control) {
    if (instr.arg == kInvalidExpr) continue;
    walk_expr(prog, instr.arg, issues, fold_used);
    double v;
    if ((instr.op == ControlInstr::Op::Wait || instr.op == ControlInstr::Op::WaitRtts) &&
        is_const(prog.arena, instr.arg, &v) && v <= 0.0) {
      issues.push_back({SemaIssue::Severity::Error,
                        "Wait/WaitRtts argument must be positive, got " +
                            std::to_string(v)});
    }
  }

  // Self-references (e.g. `acked := acked + ...`) do not count as a use
  // by anyone else; reports always carry all registers, so "unused" here
  // means "not read by any *other* expression" — only a warning, since
  // reports still deliver it to the agent.
  for (size_t i = 0; i < prog.folds.size(); ++i) {
    if (!fold_used[i]) {
      issues.push_back({SemaIssue::Severity::Warning,
                        "fold register '" + prog.folds[i].name +
                            "' is never read by another expression"});
    }
  }
  return issues;
}

void check_or_throw(const Program& prog) {
  std::string errors;
  for (const auto& issue : analyze(prog)) {
    if (issue.severity == SemaIssue::Severity::Error) {
      if (!errors.empty()) errors += "; ";
      errors += issue.message;
    }
  }
  if (!errors.empty()) throw ProgramError(errors);
}

}  // namespace ccp::lang
