// Fluent C++ API for constructing datapath programs, mirroring the
// paper's chained syntax:
//
//     Rate(1.25*r).WaitRtts(1.0).Report().
//     Rate(0.75*r).WaitRtts(1.0).Report().
//     Rate(rate).WaitRtts(6.0).Report()
//
// becomes
//
//     ProgramBuilder()
//         .def("rate", Expr::c(0), ewma(f("rate"), pkt(PktField::RcvRateBps), 0.125))
//         .rate(1.25 * v("r")).wait_rtts(1.0).report()
//         .rate(0.75 * v("r")).wait_rtts(1.0).report()
//         .rate(v("r")).wait_rtts(6.0).report()
//         .build();
//
// The builder produces exactly the same `Program` AST the text parser
// does, so algorithms can choose either form.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace ccp::lang {

/// Value-semantic expression handle used by the builder.
class Expr {
 public:
  /// Literal constant.
  static Expr c(double value);
  /// Packet field reference (Pkt.<field>).
  static Expr pkt(PktField field);
  /// Install-time variable reference ($name).
  static Expr var(std::string name);
  /// Fold register reference.
  static Expr fold(std::string name);

  friend Expr operator+(Expr a, Expr b);
  friend Expr operator-(Expr a, Expr b);
  friend Expr operator*(Expr a, Expr b);
  friend Expr operator/(Expr a, Expr b);
  friend Expr operator-(Expr a);
  friend Expr operator<(Expr a, Expr b);
  friend Expr operator<=(Expr a, Expr b);
  friend Expr operator>(Expr a, Expr b);
  friend Expr operator>=(Expr a, Expr b);
  friend Expr operator==(Expr a, Expr b);
  friend Expr operator!=(Expr a, Expr b);
  friend Expr operator&&(Expr a, Expr b);
  friend Expr operator||(Expr a, Expr b);

  friend Expr min(Expr a, Expr b);
  friend Expr max(Expr a, Expr b);
  friend Expr pow(Expr a, Expr b);
  friend Expr abs(Expr a);
  friend Expr sqrt(Expr a);
  friend Expr cbrt(Expr a);
  friend Expr log(Expr a);
  friend Expr exp(Expr a);
  friend Expr ewma(Expr old_value, Expr sample, Expr gain);
  friend Expr if_(Expr cond, Expr then_val, Expr else_val);

  // Numeric literals promote implicitly so `1.25 * v` reads naturally.
  Expr(double value);  // NOLINT(google-explicit-constructor)
  Expr(int value);     // NOLINT(google-explicit-constructor)

  class Node;
  std::shared_ptr<const Node> node;

 private:
  explicit Expr(std::shared_ptr<const Node> n) : node(std::move(n)) {}
};

/// Builds a `Program`. Methods return *this for chaining.
class ProgramBuilder {
 public:
  struct DefOpts {
    bool is_volatile = false;
    bool urgent = false;
  };

  /// Declares a fold register. `update` runs once per ACK; `init` at
  /// install (and after each Report if volatile).
  ProgramBuilder& def(std::string name, Expr init, Expr update, DefOpts opts);
  ProgramBuilder& def(std::string name, Expr init, Expr update);

  /// Shorthand for the common per-report counter: volatile, init 0.
  ProgramBuilder& def_counter(std::string name, Expr update, bool urgent = false);

  ProgramBuilder& rate(Expr bytes_per_sec);
  ProgramBuilder& cwnd(Expr bytes);
  ProgramBuilder& wait(Expr microseconds);
  ProgramBuilder& wait_rtts(Expr rtts);
  ProgramBuilder& report();

  /// Lowers to the AST. Throws ProgramError on unknown fold-register
  /// references. The result still goes through sema in compile().
  Program build() const;

 private:
  struct Def {
    std::string name;
    Expr init;
    Expr update;
    DefOpts opts;
  };
  struct Step {
    ControlInstr::Op op;
    std::shared_ptr<const Expr::Node> arg;  // null for Report
  };
  std::vector<Def> defs_;
  std::vector<Step> steps_;
};

// Terse aliases for algorithm code.
inline Expr v(std::string name) { return Expr::var(std::move(name)); }
inline Expr f(std::string name) { return Expr::fold(std::move(name)); }
inline Expr pkt(PktField field) { return Expr::pkt(field); }

}  // namespace ccp::lang
