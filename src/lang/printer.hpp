// Pretty-printer: Program AST -> canonical text form. Round-trips through
// the parser (parse(print(p)) is structurally identical to p), which the
// tests rely on, and is what the agent logs when installing programs.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace ccp::lang {

std::string print_expr(const Program& prog, ExprId id);
std::string print_program(const Program& prog);

}  // namespace ccp::lang
