#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "lang/error.hpp"

namespace ccp::lang {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](TokKind kind, std::string text = {}, double num = 0) {
    out.push_back(Token{kind, std::move(text), num, line, col});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (ident_start(c)) {
      size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      push(TokKind::Ident, std::string(src.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      // Hex literals (used for "infinity" sentinels like 0x7fffffff).
      if (c == '0' && j + 1 < src.size() && (src[j + 1] == 'x' || src[j + 1] == 'X')) {
        j += 2;
        while (j < src.size() && std::isxdigit(static_cast<unsigned char>(src[j]))) ++j;
        const std::string text(src.substr(i, j - i));
        const double v = static_cast<double>(std::strtoull(text.c_str() + 2, nullptr, 16));
        push(TokKind::Number, text, v);
        advance(j - i);
        continue;
      }
      while (j < src.size() && (std::isdigit(static_cast<unsigned char>(src[j])) ||
                                src[j] == '.')) {
        ++j;
      }
      if (j < src.size() && (src[j] == 'e' || src[j] == 'E')) {
        size_t k = j + 1;
        if (k < src.size() && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < src.size() && std::isdigit(static_cast<unsigned char>(src[k]))) {
          j = k;
          while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      const std::string text(src.substr(i, j - i));
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        throw ProgramError("malformed number '" + text + "'", line, col);
      }
      push(TokKind::Number, text, v);
      advance(j - i);
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      if (j >= src.size() || !ident_start(src[j])) {
        throw ProgramError("expected variable name after '$'", line, col);
      }
      while (j < src.size() && ident_char(src[j])) ++j;
      push(TokKind::Dollar, std::string(src.substr(i + 1, j - i - 1)));
      advance(j - i);
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '{': push(TokKind::LBrace); advance(1); break;
      case '}': push(TokKind::RBrace); advance(1); break;
      case '(': push(TokKind::LParen); advance(1); break;
      case ')': push(TokKind::RParen); advance(1); break;
      case ';': push(TokKind::Semi); advance(1); break;
      case ',': push(TokKind::Comma); advance(1); break;
      case '.': push(TokKind::Dot); advance(1); break;
      case '+': push(TokKind::Plus); advance(1); break;
      case '-': push(TokKind::Minus); advance(1); break;
      case '*': push(TokKind::Star); advance(1); break;
      case '/': push(TokKind::Slash); advance(1); break;
      case ':':
        if (!two('=')) throw ProgramError("expected ':='", line, col);
        push(TokKind::Assign);
        advance(2);
        break;
      case '<':
        if (two('=')) { push(TokKind::Le); advance(2); }
        else { push(TokKind::Lt); advance(1); }
        break;
      case '>':
        if (two('=')) { push(TokKind::Ge); advance(2); }
        else { push(TokKind::Gt); advance(1); }
        break;
      case '=':
        if (!two('=')) throw ProgramError("expected '==' (assignment is ':=')", line, col);
        push(TokKind::EqEq);
        advance(2);
        break;
      case '!':
        if (two('=')) { push(TokKind::Ne); advance(2); }
        else { push(TokKind::Bang); advance(1); }
        break;
      case '&':
        if (!two('&')) throw ProgramError("expected '&&'", line, col);
        push(TokKind::AndAnd);
        advance(2);
        break;
      case '|':
        if (!two('|')) throw ProgramError("expected '||'", line, col);
        push(TokKind::OrOr);
        advance(2);
        break;
      default:
        throw ProgramError(std::string("unexpected character '") + c + "'", line, col);
    }
  }
  out.push_back(Token{TokKind::End, "", 0, line, col});
  return out;
}

}  // namespace ccp::lang
