#include "lang/printer.hpp"

#include <cmath>
#include <cstdio>

namespace ccp::lang {
namespace {

const char* binary_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
    default: return nullptr;  // Min/Max/Pow print as calls
  }
}

const char* binary_fn(BinaryOp op) {
  switch (op) {
    case BinaryOp::Min: return "min";
    case BinaryOp::Max: return "max";
    case BinaryOp::Pow: return "pow";
    default: return nullptr;
  }
}

const char* unary_fn(UnaryOp op) {
  switch (op) {
    case UnaryOp::Sqrt: return "sqrt";
    case UnaryOp::Abs: return "abs";
    case UnaryOp::Log: return "log";
    case UnaryOp::Exp: return "exp";
    case UnaryOp::Cbrt: return "cbrt";
    default: return nullptr;  // Neg/Not print as prefix operators
  }
}

std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string print_expr(const Program& prog, ExprId id) {
  const ExprNode& n = prog.arena.at(id);
  switch (n.kind) {
    case ExprKind::Const:
      // Negative literals print parenthesized so the round trip is
      // idempotent: the parser reads "-2" as Neg(Const(2)), which prints
      // as "(-2)" — so print "(-2)" the first time too.
      if (n.constant < 0 || std::signbit(n.constant)) {
        return "(" + format_number(n.constant) + ")";
      }
      return format_number(n.constant);
    case ExprKind::FoldRef:
      return prog.folds[n.index].name;
    case ExprKind::PktRef:
      return "Pkt." + std::string(pkt_field_name(n.field));
    case ExprKind::VarRef:
      return "$" + prog.vars[n.index];
    case ExprKind::Unary: {
      const std::string inner = print_expr(prog, n.child[0]);
      if (const char* fn = unary_fn(n.unary_op)) {
        return std::string(fn) + "(" + inner + ")";
      }
      return (n.unary_op == UnaryOp::Neg ? "(-" : "(!") + inner + ")";
    }
    case ExprKind::Binary: {
      const std::string a = print_expr(prog, n.child[0]);
      const std::string b = print_expr(prog, n.child[1]);
      if (const char* fn = binary_fn(n.binary_op)) {
        return std::string(fn) + "(" + a + ", " + b + ")";
      }
      // Fully parenthesized so we never need precedence logic here.
      return "(" + a + " " + binary_symbol(n.binary_op) + " " + b + ")";
    }
    case ExprKind::Ternary: {
      const std::string a = print_expr(prog, n.child[0]);
      const std::string b = print_expr(prog, n.child[1]);
      const std::string c = print_expr(prog, n.child[2]);
      const char* fn = n.ternary_op == TernaryOp::If ? "if" : "ewma";
      return std::string(fn) + "(" + a + ", " + b + ", " + c + ")";
    }
  }
  return "?";
}

std::string print_program(const Program& prog) {
  std::string out;
  if (!prog.folds.empty()) {
    out += "fold {\n";
    for (const auto& reg : prog.folds) {
      out += "  ";
      if (reg.is_volatile) out += "volatile ";
      out += reg.name + " := " + print_expr(prog, reg.update) + " init " +
             print_expr(prog, reg.init);
      if (reg.urgent) out += " urgent";
      out += ";\n";
    }
    out += "}\n";
  }
  out += "control {\n";
  for (const auto& instr : prog.control) {
    out += "  ";
    switch (instr.op) {
      case ControlInstr::Op::SetRate:
        out += "Rate(" + print_expr(prog, instr.arg) + ");\n";
        break;
      case ControlInstr::Op::SetCwnd:
        out += "Cwnd(" + print_expr(prog, instr.arg) + ");\n";
        break;
      case ControlInstr::Op::Wait:
        out += "Wait(" + print_expr(prog, instr.arg) + ");\n";
        break;
      case ControlInstr::Op::WaitRtts:
        out += "WaitRtts(" + print_expr(prog, instr.arg) + ");\n";
        break;
      case ControlInstr::Op::Report:
        out += "Report();\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ccp::lang
