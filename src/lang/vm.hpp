// The datapath virtual machine.
//
// Executes compiled fold blocks per ACK and evaluates control-instruction
// argument expressions. Arithmetic is total: division by zero yields 0,
// log/sqrt of out-of-domain values yield 0 — a misbehaving program can
// produce garbage numbers but can never crash the datapath (§2.2, §5
// "Is CCP safe to deploy?"). The agent-side policy layer clamps the
// resulting rate/cwnd values.
#pragma once

#include <span>
#include <vector>

#include "lang/bytecode.hpp"
#include "lang/compiler.hpp"
#include "lang/jit/jit.hpp"
#include "lang/pkt_fields.hpp"

namespace ccp::lang {

/// Evaluates one CodeBlock. `fold_state` is read and (for StoreFold)
/// written in place; `vars` are the install-time bindings. Returns the
/// value in the block's result slot (0.0 for empty blocks).
///
/// `scratch` is caller-provided to keep the per-ACK path allocation-free;
/// it is resized on first use per program.
double eval_block(const CodeBlock& block, std::span<double> fold_state,
                  const PktInfo& pkt, std::span<const double> vars,
                  std::vector<double>& scratch);

/// Batch (cross-flow) evaluation of one CodeBlock over a struct-of-arrays
/// register layout: element (row r, lane l) of each matrix lives at
/// r*kBatchLanes + l. `fold_state` holds num_folds rows, `pkt` holds
/// kNumPktFields rows (indexed by PktField value), `vars` num_vars rows
/// and `scratch` n_slots rows; only the first `n_lanes` (<= kBatchLanes)
/// columns are read or written. The per-lane arithmetic is the scalar
/// eval_block expressions verbatim (same safe_* totalization, same
/// evaluation order), so results are bit-identical to running eval_block
/// once per lane — the contract the batch differential fuzzer enforces.
/// This is the execution engine for CCP_JIT=Off and -DCCP_ENABLE_SIMD=OFF
/// batch paths, and the reference for Verify. The block's result value
/// for lane l is left in scratch[result_slot*kBatchLanes + l].
void eval_block_batch(const CodeBlock& block, double* fold_state,
                      const double* pkt, const double* vars, double* scratch,
                      size_t n_lanes);

/// Per-flow fold-machine state: owns the fold register file and scratch
/// space, applies init/update/report-reset semantics.
class FoldMachine {
 public:
  FoldMachine() = default;

  /// Binds a program and variable values, and runs the init block.
  void install(const CompiledProgram* prog, std::vector<double> vars);

  /// Re-binds variable values without resetting fold state (the agent's
  /// UpdateFields message). Lengths must match the installed program.
  void update_vars(std::vector<double> vars);

  /// Folds one ACK's measurements into the register file.
  /// Returns true if any `urgent` register changed value.
  /// Inline: this is the datapath's per-ACK entry into the VM; the
  /// urgency bookkeeping around eval_block should not cost a call.
  bool on_packet(const PktInfo& pkt) {
    if (prog_ == nullptr) return false;
    const auto& urgent = prog_->urgent_indices;
    if (urgent.empty()) {
      exec_fold(pkt);
      return false;
    }
    // Snapshot only the urgent registers (typically 1-2 of dozens) rather
    // than the whole register file; `before_` is a member sized once at
    // install so the per-ACK path stays allocation-free.
    for (size_t i = 0; i < urgent.size(); ++i) before_[i] = state_[urgent[i]];
    exec_fold(pkt);
    for (size_t i = 0; i < urgent.size(); ++i) {
      if (state_[urgent[i]] != before_[i]) return true;
    }
    return false;
  }

  /// Evaluates the argument expression of control instruction `idx`.
  double eval_control_arg(size_t idx, const PktInfo& pkt);

  /// Called after a report has been emitted: volatile registers reset to
  /// their init values (evaluated against a zero packet, as at install).
  void reset_volatile();

  const std::vector<double>& state() const { return state_; }
  const CompiledProgram* program() const { return prog_; }
  bool installed() const { return prog_ != nullptr; }

  /// True when per-ACK folds run native code (JitMode On or Verify and
  /// the program compiled successfully at install).
  bool jit_active() const { return jit_fn_ != nullptr; }
  /// True when every fold also cross-checks the interpreter (Verify).
  bool jit_verifying() const { return jit_fn_ != nullptr && jit_verify_; }

  // --- cross-flow batch execution surface (datapath/ack_batch.cc) ---
  // The batch runner gathers/scatters fold registers and vars directly;
  // these expose the backing rows without copies. batch_fn() is the
  // packed-SIMD batch kernel latched at install (null when the JIT is
  // off, the build disables SIMD, or the program is SIMD-ineligible —
  // helper calls keep a program on the scalar-lane path).
  double* state_data() { return state_.data(); }
  const double* vars_data() const { return vars_.data(); }
  jit::BatchFoldFn batch_fn() const { return jit_batch_fn_; }

 private:
  /// Per-ACK fold dispatch: direct native call in the common JIT-on
  /// case; out-of-line jit_exec handles sampling + Verify; otherwise the
  /// interpreter. Mode is resolved at install, not here.
  void exec_fold(const PktInfo& pkt) {
    if (jit_fn_ != nullptr) {
      jit_exec(pkt);
      return;
    }
    eval_block(prog_->fold_block, state_, pkt, vars_, scratch_);
  }

  /// Runs the native fold (with 1/1024-sampled jit_exec_ns timing), or
  /// in Verify mode both engines with a bitwise fold-state compare.
  /// Out of line: keeps telemetry out of this header.
  void jit_exec(const PktInfo& pkt);

  const CompiledProgram* prog_ = nullptr;
  std::vector<double> vars_;
  std::vector<double> state_;
  std::vector<double> init_snapshot_;  // state right after init, for volatile reset
  std::vector<double> scratch_;
  std::vector<double> before_;  // urgent-register snapshot, one per urgent_indices entry

  // -- native execution (lang/jit) --
  std::shared_ptr<const jit::Handle> jit_handle_;  // keeps the code alive
  jit::FoldFn jit_fn_ = nullptr;                   // null: interpret
  jit::BatchFoldFn jit_batch_fn_ = nullptr;        // null: no SIMD batch kernel
  bool jit_verify_ = false;                        // JitMode::Verify at install
  std::vector<double> verify_state_;    // shadow fold state for Verify
  std::vector<double> verify_scratch_;  // shadow slot file for Verify
};

}  // namespace ccp::lang
