#include "lang/jit/jit.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "lang/compiler.hpp"
#include "telemetry/telemetry.hpp"

#if defined(CCP_JIT_X86_64)
#include "lang/jit/code_cache.hpp"
#include "lang/jit/codegen.hpp"
#endif

namespace ccp::lang::jit {
namespace {

constexpr uint8_t kModeUnset = 0xFF;
std::atomic<uint8_t> g_mode{kModeUnset};
std::atomic<bool> g_force_fail{false};

uint8_t mode_from_env() {
  if (const char* v = std::getenv("CCP_JIT")) {
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
      return static_cast<uint8_t>(JitMode::Off);
    }
    if (std::strcmp(v, "verify") == 0) {
      return static_cast<uint8_t>(JitMode::Verify);
    }
  }
  return static_cast<uint8_t>(JitMode::On);
}

}  // namespace

void set_mode(JitMode m) {
  g_mode.store(static_cast<uint8_t>(m), std::memory_order_relaxed);
}

JitMode mode() {
  uint8_t m = g_mode.load(std::memory_order_relaxed);
  if (m == kModeUnset) [[unlikely]] {
    m = mode_from_env();
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<JitMode>(m);
}

void set_force_emit_failure(bool on) {
  g_force_fail.store(on, std::memory_order_relaxed);
}

#if defined(CCP_JIT_X86_64)

bool available() { return true; }

struct Handle {
  CodeRegion region;
  FoldFn fn = nullptr;
  uint32_t code_size = 0;
  bool is_reg_cached = false;
  // Cross-flow batch kernel (own region: compiled separately, and a
  // batch emit failure must not invalidate the scalar code).
  CodeRegion batch_region;
  BatchFoldFn batch_fn = nullptr;
  uint32_t batch_code_size = 0;

  ~Handle() {
    // metrics() is a deliberately leaked singleton, so this is safe even
    // from static-destruction of a cached program at exit.
    if (fn != nullptr) telemetry::metrics().jit_code_bytes.sub(code_size);
    if (batch_fn != nullptr) {
      telemetry::metrics().jit_code_bytes.sub(batch_code_size);
    }
  }
};

std::shared_ptr<const Handle> get_or_compile(const CompiledProgram& prog) {
  // One global mutex: compiles happen at install time (rare), and it
  // also serializes access to the mutable per-program handle slot.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);

  if (prog.jit_handle) {
    return prog.jit_handle->fn != nullptr ? prog.jit_handle : nullptr;
  }

  auto h = std::make_shared<Handle>();
  const uint64_t t0 = telemetry::now_ns();
  std::optional<CompiledBlock> cb;
  if (!g_force_fail.load(std::memory_order_relaxed)) {
    cb = compile_block(prog.fold_block);
  }
  if (cb) {
    if (auto region = CodeRegion::create(cb->code, cb->pool, cb->pool_patch_at)) {
      h->region = std::move(*region);
      h->fn = reinterpret_cast<FoldFn>(
          const_cast<void*>(h->region.entry()));
      h->code_size = static_cast<uint32_t>(cb->code.size());
      h->is_reg_cached = cb->reg_cached;
    }
  }
#if !defined(CCP_NO_SIMD)
  // Batch kernel: attempted only once the scalar compile stands (the
  // batch path peels to scalar lanes, so scalar code is the
  // prerequisite). compile_block_batch declines helper-bearing folds —
  // those programs simply run scalar lanes in batch waves.
  if (h->fn != nullptr) {
    if (auto bb = compile_block_batch(prog.fold_block)) {
      if (auto region =
              CodeRegion::create(bb->code, bb->pool, bb->pool_patch_at)) {
        h->batch_region = std::move(*region);
        h->batch_fn = reinterpret_cast<BatchFoldFn>(
            const_cast<void*>(h->batch_region.entry()));
        h->batch_code_size = static_cast<uint32_t>(bb->code.size());
      }
    }
  }
#endif
  const uint64_t dt = telemetry::now_ns() - t0;

  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    if (h->fn != nullptr) {
      m.jit_compiles.inc();
      m.jit_compile_ns.record(dt);
      m.jit_code_bytes.add(h->code_size);
      if (h->batch_fn != nullptr) m.jit_code_bytes.add(h->batch_code_size);
      // Trace payload: value = compile latency (ns); the flow field
      // carries the code size in bytes (there is no flow here).
      telemetry::trace(telemetry::TraceKind::JitCompile, h->code_size,
                       static_cast<double>(dt));
    } else {
      m.jit_fallbacks.inc();
    }
  }

  prog.jit_handle = h;  // latch success or failure alike
  return h->fn != nullptr ? prog.jit_handle : nullptr;
}

FoldFn entry(const Handle& h) { return h.fn; }
uint32_t code_bytes(const Handle& h) { return h.code_size; }
bool reg_cached(const Handle& h) { return h.is_reg_cached; }
BatchFoldFn batch_entry(const Handle& h) { return h.batch_fn; }
uint32_t batch_code_bytes(const Handle& h) { return h.batch_code_size; }
#if defined(CCP_NO_SIMD)
bool simd_available() { return false; }
#else
bool simd_available() { return true; }
#endif

#else  // !CCP_JIT_X86_64 — interpreter-only build or foreign arch

bool available() { return false; }

struct Handle {};

std::shared_ptr<const Handle> get_or_compile(const CompiledProgram& prog) {
  // Count the would-be compile as a fallback once per program so the
  // telemetry story is the same on every platform.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (!prog.jit_handle) {
    prog.jit_handle = std::make_shared<const Handle>();
    if (telemetry::enabled()) telemetry::metrics().jit_fallbacks.inc();
  }
  return nullptr;
}

FoldFn entry(const Handle&) { return nullptr; }
uint32_t code_bytes(const Handle&) { return 0; }
bool reg_cached(const Handle&) { return false; }
BatchFoldFn batch_entry(const Handle&) { return nullptr; }
uint32_t batch_code_bytes(const Handle&) { return 0; }
bool simd_available() { return false; }

#endif

}  // namespace ccp::lang::jit
