#include "lang/jit/code_cache.hpp"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define CCP_JIT_HAVE_MMAP 1
#endif

namespace ccp::lang::jit {

CodeRegion::~CodeRegion() {
#if CCP_JIT_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, mapped_);
#endif
}

CodeRegion::CodeRegion(CodeRegion&& o) noexcept
    : base_(std::exchange(o.base_, nullptr)), mapped_(std::exchange(o.mapped_, 0)) {}

CodeRegion& CodeRegion::operator=(CodeRegion&& o) noexcept {
  if (this != &o) {
#if CCP_JIT_HAVE_MMAP
    if (base_ != nullptr) ::munmap(base_, mapped_);
#endif
    base_ = std::exchange(o.base_, nullptr);
    mapped_ = std::exchange(o.mapped_, 0);
  }
  return *this;
}

std::optional<CodeRegion> CodeRegion::create(const std::vector<uint8_t>& code,
                                             const std::vector<double>& pool,
                                             size_t pool_patch_at) {
#if CCP_JIT_HAVE_MMAP
  if (code.empty() || pool_patch_at + 8 > code.size()) return std::nullopt;

  const size_t pool_off = (code.size() + 15) & ~size_t{15};
  const size_t total = pool_off + pool.size() * sizeof(double);
  const long page = ::sysconf(_SC_PAGESIZE);
  const size_t page_sz = page > 0 ? static_cast<size_t>(page) : 4096;
  const size_t mapped = (total + page_sz - 1) & ~(page_sz - 1);

  void* base = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) return std::nullopt;

  auto* p = static_cast<uint8_t*>(base);
  std::memcpy(p, code.data(), code.size());
  if (!pool.empty()) {
    std::memcpy(p + pool_off, pool.data(), pool.size() * sizeof(double));
  }
  const uint64_t pool_addr = reinterpret_cast<uint64_t>(p + pool_off);
  std::memcpy(p + pool_patch_at, &pool_addr, sizeof(pool_addr));

  if (::mprotect(base, mapped, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(base, mapped);
    return std::nullopt;
  }

  CodeRegion r;
  r.base_ = base;
  r.mapped_ = mapped;
  return r;
#else
  (void)code;
  (void)pool;
  (void)pool_patch_at;
  return std::nullopt;
#endif
}

}  // namespace ccp::lang::jit
