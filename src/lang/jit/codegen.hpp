// Bytecode -> x86-64 lowering for per-ACK fold blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lang/bytecode.hpp"

namespace ccp::lang::jit {

/// Output of one block compilation: raw machine code plus the constant
/// pool the code addresses through r15. `pool_patch_at` is the offset of
/// the movabs imm64 that the code cache patches with the pool's final
/// absolute address. `reg_cached` records whether the block's scratch
/// slots lived entirely in xmm registers (the common small-program case)
/// or spilled to the caller-provided scratch array.
struct CompiledBlock {
  std::vector<uint8_t> code;
  std::vector<double> pool;
  size_t pool_patch_at = 0;
  bool reg_cached = false;
};

/// Lowers an optimized CodeBlock to native code implementing
///   double fn(double* fold, const double* pkt, const double* vars,
///             double* scratch)
/// with semantics bit-identical to eval_block (same total arithmetic,
/// same NaN behavior, same evaluation order; no FMA contraction).
/// Returns nullopt if the block uses an opcode the emitter cannot lower
/// (none today, but the failure path is load-bearing: it is the
/// interpreter-fallback trigger and is exercised by tests via the forced
/// emit-failure hook in jit.hpp).
std::optional<CompiledBlock> compile_block(const CodeBlock& block);

/// Lowers an optimized CodeBlock to a cross-flow batch kernel
///   void fn(double* fold_soa, const double* pkt_soa,
///           const double* vars_soa, double* scratch_soa, uint64_t n_pairs)
/// over struct-of-arrays matrices with row stride lang::kBatchLanes:
/// the emitted loop body processes two lanes per iteration with packed
/// SSE2 (addpd/cmppd/... mirror the scalar lowering op for op), running
/// n_pairs iterations. Per-lane results are bit-identical to eval_block
/// on that lane's column — same totalized arithmetic, same operand
/// order, no FMA. Returns nullopt for SIMD-ineligible blocks: anything
/// calling a libm helper (Log/Exp/Cbrt/Pow has no packed form here) or
/// using an opcode the emitter cannot lower — the caller then keeps such
/// programs on the scalar-lane path.
std::optional<CompiledBlock> compile_block_batch(const CodeBlock& block);

}  // namespace ccp::lang::jit
