// Bytecode -> x86-64 lowering for per-ACK fold blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lang/bytecode.hpp"

namespace ccp::lang::jit {

/// Output of one block compilation: raw machine code plus the constant
/// pool the code addresses through r15. `pool_patch_at` is the offset of
/// the movabs imm64 that the code cache patches with the pool's final
/// absolute address. `reg_cached` records whether the block's scratch
/// slots lived entirely in xmm registers (the common small-program case)
/// or spilled to the caller-provided scratch array.
struct CompiledBlock {
  std::vector<uint8_t> code;
  std::vector<double> pool;
  size_t pool_patch_at = 0;
  bool reg_cached = false;
};

/// Lowers an optimized CodeBlock to native code implementing
///   double fn(double* fold, const double* pkt, const double* vars,
///             double* scratch)
/// with semantics bit-identical to eval_block (same total arithmetic,
/// same NaN behavior, same evaluation order; no FMA contraction).
/// Returns nullopt if the block uses an opcode the emitter cannot lower
/// (none today, but the failure path is load-bearing: it is the
/// interpreter-fallback trigger and is exercised by tests via the forced
/// emit-failure hook in jit.hpp).
std::optional<CompiledBlock> compile_block(const CodeBlock& block);

}  // namespace ccp::lang::jit
