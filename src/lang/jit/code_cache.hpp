// W^X executable memory for JIT-compiled fold programs.
//
// A CodeRegion is one mmap'd block laid out as [code | pad | const pool].
// It is populated while the mapping is read-write, the single absolute
// address embedded in the code (the const-pool base, loaded into r15 by
// the prologue's movabs) is patched, and only then is the whole mapping
// flipped to read+execute. The region is never writable and executable
// at the same time, so a stray write through a corrupted pointer cannot
// retarget live code (W^X). The pool stays readable under PROT_EXEC |
// PROT_READ, which is all the generated code needs — it only ever loads
// from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ccp::lang::jit {

class CodeRegion {
 public:
  CodeRegion() = default;
  ~CodeRegion();
  CodeRegion(const CodeRegion&) = delete;
  CodeRegion& operator=(const CodeRegion&) = delete;
  CodeRegion(CodeRegion&& o) noexcept;
  CodeRegion& operator=(CodeRegion&& o) noexcept;

  /// Maps RW, copies `code` then `pool` (16-byte aligned after the code),
  /// patches the 8-byte immediate at code offset `pool_patch_at` with the
  /// absolute pool address, and seals the mapping RX. Returns nullopt if
  /// mmap/mprotect fail (treated as an emit failure upstream — the
  /// program falls back to the interpreter).
  static std::optional<CodeRegion> create(const std::vector<uint8_t>& code,
                                          const std::vector<double>& pool,
                                          size_t pool_patch_at);

  const void* entry() const { return base_; }
  size_t mapped_bytes() const { return mapped_; }
  bool valid() const { return base_ != nullptr; }

 private:
  void* base_ = nullptr;
  size_t mapped_ = 0;
};

}  // namespace ccp::lang::jit
