// Minimal x86-64 instruction emitter for the template JIT.
//
// Emits exactly the handful of encodings the fold-program codegen needs:
// GPR push/pop/mov/movabs/call for the prologue and helper calls, and
// scalar-double SSE2 (movsd/addsd/.../cmpsd/andpd/sqrtsd) for the
// instruction bodies. Everything is appended to an in-memory byte
// buffer; the code cache copies the result into an executable mapping
// and patches the one absolute address (the constant pool base).
//
// Encoding notes (Intel SDM Vol. 2):
//  - SSE scalar ops are [66|F2] [REX] 0F <op> ModRM; the legacy operand
//    prefix precedes REX.
//  - Memory operands are always [base + disp] with an explicit disp8 or
//    disp32. When (base & 7) == 4 (rsp/r12) a SIB byte is required;
//    (base & 7) == 5 (rbp/r13) merely forbids the no-displacement form,
//    which we never use.
#pragma once

#include <cstdint>
#include <vector>

namespace ccp::lang::jit {

enum Gpr : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/// An xmm register number, 0..15.
using Xmm = uint8_t;

class Asm {
 public:
  const std::vector<uint8_t>& code() const { return buf_; }
  size_t size() const { return buf_.size(); }

  // --- GPR / control flow ---

  void push(Gpr r) {
    if (r >= 8) byte(0x41);
    byte(0x50 + (r & 7));
  }
  void pop(Gpr r) {
    if (r >= 8) byte(0x41);
    byte(0x58 + (r & 7));
  }
  /// mov dst, src (64-bit).
  void mov_rr(Gpr dst, Gpr src) {
    rex(true, src, dst);
    byte(0x89);
    modrm_rr(src, dst);
  }
  /// movabs dst, imm64. Returns the buffer offset of the immediate so
  /// the caller can patch it once the final address is known.
  size_t mov_ri64(Gpr dst, uint64_t imm) {
    byte(0x48 | (dst >= 8 ? 0x01 : 0x00));
    byte(0xB8 + (dst & 7));
    const size_t at = buf_.size();
    for (int i = 0; i < 8; ++i) byte(static_cast<uint8_t>(imm >> (8 * i)));
    return at;
  }
  void patch_u64(size_t at, uint64_t imm) {
    for (int i = 0; i < 8; ++i) {
      buf_[at + static_cast<size_t>(i)] = static_cast<uint8_t>(imm >> (8 * i));
    }
  }
  void sub_rsp(uint8_t imm) { byte(0x48); byte(0x83); byte(0xEC); byte(imm); }
  void add_rsp(uint8_t imm) { byte(0x48); byte(0x83); byte(0xC4); byte(imm); }
  void call(Gpr r) {
    if (r >= 8) byte(0x41);
    byte(0xFF);
    modrm_rr(2, r);  // /2 = CALL r/m64
  }
  void ret() { byte(0xC3); }

  // --- scalar double SSE2 ---

  /// movsd xmm, [base + disp]
  void movsd_load(Xmm dst, Gpr base, int32_t disp) { sse_rm(0xF2, 0x10, dst, base, disp); }
  /// movsd [base + disp], xmm
  void movsd_store(Gpr base, int32_t disp, Xmm src) { sse_rm(0xF2, 0x11, src, base, disp); }
  /// movsd xmm, xmm (merge semantics on the upper half — fine, only the
  /// low lane ever carries a value here).
  void movsd_rr(Xmm dst, Xmm src) { sse_rr(0xF2, 0x10, dst, src); }
  /// movapd xmm, xmm — full-width register copy.
  void movapd_rr(Xmm dst, Xmm src) { sse_rr(0x66, 0x28, dst, src); }

  void addsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x58, d, s); }
  void subsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x5C, d, s); }
  void mulsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x59, d, s); }
  void divsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x5E, d, s); }
  void minsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x5D, d, s); }
  void maxsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x5F, d, s); }
  void sqrtsd_rr(Xmm d, Xmm s) { sse_rr(0xF2, 0x51, d, s); }

  void addsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x58, d, b, disp); }
  void subsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x5C, d, b, disp); }
  void mulsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x59, d, b, disp); }
  void divsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x5E, d, b, disp); }
  void minsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x5D, d, b, disp); }
  void maxsd_rm(Xmm d, Gpr b, int32_t disp) { sse_rm(0xF2, 0x5F, d, b, disp); }

  /// cmpsd xmm, xmm, pred — pred: 0 EQ, 1 LT, 2 LE, 4 NEQ (unordered
  /// compares as true only for NEQ, matching the interpreter's C
  /// comparison semantics exactly).
  void cmpsd_rr(Xmm d, Xmm s, uint8_t pred) { sse_rr(0xF2, 0xC2, d, s); byte(pred); }
  void cmpsd_rm(Xmm d, Gpr b, int32_t disp, uint8_t pred) {
    sse_rm(0xF2, 0xC2, d, b, disp);
    byte(pred);
  }

  // Bitwise ops on the full register; operands' upper lanes are always
  // zero or don't-care in this codegen.
  void andpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x54, d, s); }
  void andnpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x55, d, s); }
  void orpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x56, d, s); }
  void xorpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x57, d, s); }

  // --- packed double SSE2 (the batch kernel's 2-wide lowering) ---
  // Same opcode bytes as the F2 scalar forms under the 0x66 prefix.
  // Loads/stores are movupd: the SoA rows are 16-byte-aligned in
  // practice (kBatchLanes stride, aligned allocations), but the kernel
  // must not fault if a caller hands it an 8-aligned buffer — and on
  // every SSE2 core that runs this, movupd-on-aligned costs the same as
  // movapd.

  /// movupd xmm, [base + disp]
  void movupd_load(Xmm dst, Gpr base, int32_t disp) { sse_rm(0x66, 0x10, dst, base, disp); }
  /// movupd [base + disp], xmm
  void movupd_store(Gpr base, int32_t disp, Xmm src) { sse_rm(0x66, 0x11, src, base, disp); }
  /// movupd xmm, [base + index + disp] (scale 1; index must not be rsp)
  void movupd_load_idx(Xmm dst, Gpr base, Gpr index, int32_t disp) {
    sse_rm_idx(0x66, 0x10, dst, base, index, disp);
  }
  /// movupd [base + index + disp], xmm
  void movupd_store_idx(Gpr base, Gpr index, int32_t disp, Xmm src) {
    sse_rm_idx(0x66, 0x11, src, base, index, disp);
  }

  void addpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x58, d, s); }
  void subpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x5C, d, s); }
  void mulpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x59, d, s); }
  void divpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x5E, d, s); }
  void minpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x5D, d, s); }
  void maxpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x5F, d, s); }
  void sqrtpd_rr(Xmm d, Xmm s) { sse_rr(0x66, 0x51, d, s); }
  /// cmppd xmm, xmm, pred — same predicate table as cmpsd, per lane.
  void cmppd_rr(Xmm d, Xmm s, uint8_t pred) { sse_rr(0x66, 0xC2, d, s); byte(pred); }

  // --- integer loop scaffolding (batch kernel lane loop) ---

  /// xor dst, dst (64-bit zero).
  void xor_rr(Gpr dst, Gpr src) {
    rex(true, src, dst);
    byte(0x31);
    modrm_rr(src, dst);
  }
  /// add r, imm8 (sign-extended).
  void add_ri8(Gpr r, int8_t imm) {
    byte(static_cast<uint8_t>(0x48 | (r >= 8 ? 0x01 : 0x00)));
    byte(0x83);
    modrm_rr(0, r);  // /0 = ADD
    byte(static_cast<uint8_t>(imm));
  }
  /// dec r (64-bit).
  void dec_r(Gpr r) {
    byte(static_cast<uint8_t>(0x48 | (r >= 8 ? 0x01 : 0x00)));
    byte(0xFF);
    modrm_rr(1, r);  // /1 = DEC
  }
  /// test a, b (64-bit; sets ZF on a & b == 0).
  void test_rr(Gpr a, Gpr b) {
    rex(true, a, b);
    byte(0x85);
    modrm_rr(a, b);
  }
  /// jz/jnz rel32 with a placeholder displacement; returns the offset of
  /// the rel32 for patch_rel32 once the target is known.
  size_t jz_rel32() { return jcc_rel32(0x84); }
  size_t jnz_rel32() { return jcc_rel32(0x85); }
  /// Patches a jcc_rel32 displacement to jump to buffer offset `target`.
  void patch_rel32(size_t at, size_t target) {
    const int32_t rel = static_cast<int32_t>(static_cast<int64_t>(target) -
                                             static_cast<int64_t>(at + 4));
    for (int i = 0; i < 4; ++i) {
      buf_[at + static_cast<size_t>(i)] =
          static_cast<uint8_t>(static_cast<uint32_t>(rel) >> (8 * i));
    }
  }

 private:
  size_t jcc_rel32(uint8_t op2) {
    byte(0x0F);
    byte(op2);
    const size_t at = buf_.size();
    for (int i = 0; i < 4; ++i) byte(0x00);
    return at;
  }

  /// SSE op with a [base + 1*index + disp] memory operand (SIB form).
  /// index must not be RSP (encoding 4 means "no index"); REX.X covers
  /// r8..r15 indices.
  void sse_rm_idx(uint8_t prefix, uint8_t op, int reg, Gpr base, Gpr index,
                  int32_t disp) {
    byte(prefix);
    const uint8_t r = (reg >= 8) ? 0x04 : 0x00;
    const uint8_t x = (index >= 8) ? 0x02 : 0x00;
    const uint8_t b = (base >= 8) ? 0x01 : 0x00;
    if (r | x | b) byte(0x40 | r | x | b);
    byte(0x0F);
    byte(op);
    const bool small = disp >= -128 && disp <= 127;
    const uint8_t mod = small ? 0x40 : 0x80;
    byte(static_cast<uint8_t>(mod | ((reg & 7) << 3) | 4));  // rm=100: SIB
    byte(static_cast<uint8_t>(((index & 7) << 3) | (base & 7)));  // scale=1
    if (small) {
      byte(static_cast<uint8_t>(disp));
    } else {
      for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>(disp >> (8 * i)));
    }
  }

  void byte(uint8_t b) { buf_.push_back(b); }

  /// Optional REX for a reg-reg form (reg = ModRM.reg, rm = ModRM.rm).
  void rex_opt(int reg, int rm) {
    const uint8_t r = (reg >= 8) ? 0x04 : 0x00;
    const uint8_t b = (rm >= 8) ? 0x01 : 0x00;
    if (r | b) byte(0x40 | r | b);
  }
  /// Mandatory REX.W form (64-bit GPR ops).
  void rex(bool w, int reg, int rm) {
    byte(0x40 | (w ? 0x08 : 0x00) | ((reg >= 8) ? 0x04 : 0x00) |
         ((rm >= 8) ? 0x01 : 0x00));
  }
  void modrm_rr(int reg, int rm) {
    byte(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  void sse_rr(uint8_t prefix, uint8_t op, int reg, int rm) {
    byte(prefix);
    rex_opt(reg, rm);
    byte(0x0F);
    byte(op);
    modrm_rr(reg, rm);
  }

  void sse_rm(uint8_t prefix, uint8_t op, int reg, Gpr base, int32_t disp) {
    byte(prefix);
    rex_opt(reg, base);
    byte(0x0F);
    byte(op);
    const bool need_sib = (base & 7) == 4;
    const bool small = disp >= -128 && disp <= 127;
    const uint8_t mod = small ? 0x40 : 0x80;
    byte(static_cast<uint8_t>(mod | ((reg & 7) << 3) | (need_sib ? 4 : (base & 7))));
    if (need_sib) byte(0x24);  // scale=1, no index, base=rsp/r12
    if (small) {
      byte(static_cast<uint8_t>(disp));
    } else {
      for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>(disp >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

}  // namespace ccp::lang::jit
