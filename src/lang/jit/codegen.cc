// Lowers optimized fold bytecode to x86-64.
//
// Contract: bit-identical results to eval_block in vm.cc, for every
// input including NaN, ±0, infinities, and out-of-domain values. That
// is what lets JitMode::Verify and the differential fuzzer memcmp fold
// state between the two engines. The ground rules that keep the two in
// lockstep:
//
//  - Total arithmetic is lowered branchlessly with SSE2 compare masks:
//    safe_div keys on `b != 0` (cmpsd NEQ — unordered compares true,
//    matching `b == 0.0 ? ... : a / b` for NaN divisors), safe_sqrt on
//    `a <= 0` (cmpsd LE — unordered false, so sqrt(NaN) stays NaN as in
//    the interpreter).
//  - minsd/maxsd are emitted with dst = s[a], src = s[b]: the SSE rule
//    "return src on equal or unordered" is exactly the interpreter's
//    `a < b ? a : b` / `a > b ? a : b` ternaries, NaN and -0.0 included.
//  - Gt/Ge have no cmpsd predicate; they are lowered as flipped Lt/Le
//    (`a > b` == `b < a`), which preserves unordered-false.
//  - Ewma keeps the interpreter's exact evaluation order
//    ((1-w)*a then w*b then the add) with discrete mulsd/addsd — never
//    FMA, which would change rounding.
//  - Log/Exp/Cbrt/Pow call out to helpers below that are copies of the
//    vm.cc safe_* definitions, so both engines round-trip the same libm.
//
// Two slot-allocation modes: programs with <= 12 scratch slots and no
// helper calls keep every slot in xmm4..xmm15 ("reg-cached", the common
// case after the optimizer's DCE); larger or call-bearing programs keep
// slots in the caller's scratch array (helpers may clobber any xmm).
// xmm0..xmm3 are scratch temporaries in both modes.
//
// Fixed register plan (SysV: args rdi/rsi/rdx/rcx):
//   rbx = fold state    rbp = pkt fields    r13 = vars
//   r14 = scratch slots r15 = const pool (movabs, patched by CodeRegion)

#include "lang/jit/codegen.hpp"

#include <cmath>

#include "lang/jit/emitter.hpp"

namespace ccp::lang::jit {

// Helper bodies duplicated from vm.cc's safe_log / safe_pow (and the
// plain std:: calls for Exp/Cbrt): both engines must resolve to the
// same libm entry points so results match bit for bit.
extern "C" {
double ccp_jit_log(double a) { return a <= 0.0 ? 0.0 : std::log(a); }
double ccp_jit_exp(double a) { return std::exp(a); }
double ccp_jit_cbrt(double a) { return std::cbrt(a); }
double ccp_jit_pow(double a, double b) {
  const double v = std::pow(a, b);
  return std::isfinite(v) ? v : 0.0;
}
}

namespace {

// cmpsd immediate predicates. Unordered (any NaN operand) compares
// false for EQ/LT/LE and true for NEQ — the same truth table as the
// C operators the interpreter uses.
constexpr uint8_t kCmpEq = 0;
constexpr uint8_t kCmpLt = 1;
constexpr uint8_t kCmpLe = 2;
constexpr uint8_t kCmpNeq = 4;

constexpr uint16_t kMaxRegSlots = 12;  // xmm4..xmm15

bool has_helper_call(const CodeBlock& b) {
  for (const Instr& in : b.code) {
    switch (in.op) {
      case OpCode::Log:
      case OpCode::Exp:
      case OpCode::Cbrt:
      case OpCode::Pow:
        return true;
      default:
        break;
    }
  }
  return false;
}

class BlockCompiler {
 public:
  explicit BlockCompiler(const CodeBlock& b)
      : b_(b), reg_mode_(b.n_slots <= kMaxRegSlots && !has_helper_call(b)) {
    pool_ = b.consts;
    off_negzero_ = static_cast<int32_t>(pool_.size() * 8);
    pool_.push_back(-0.0);
    off_one_ = static_cast<int32_t>(pool_.size() * 8);
    pool_.push_back(1.0);
  }

  std::optional<CompiledBlock> run() {
    prologue();
    for (const Instr& in : b_.code) {
      if (!lower(in)) return std::nullopt;
    }
    epilogue();
    CompiledBlock out;
    out.code = a_.code();
    out.pool = std::move(pool_);
    out.pool_patch_at = pool_patch_at_;
    out.reg_cached = reg_mode_;
    return out;
  }

 private:
  static Xmm xreg(uint16_t s) { return static_cast<Xmm>(4 + s); }
  static int32_t off(uint16_t i) { return static_cast<int32_t>(i) * 8; }
  int32_t koff(uint16_t i) const { return off(i); }

  void prologue() {
    a_.push(RBX);
    a_.push(RBP);
    a_.push(R13);
    a_.push(R14);
    a_.push(R15);
    // 5 pushes + the return address leave rsp 16-aligned, so helper
    // calls need no extra adjustment.
    a_.mov_rr(RBX, RDI);  // fold state
    a_.mov_rr(RBP, RSI);  // pkt
    a_.mov_rr(R13, RDX);  // vars
    a_.mov_rr(R14, RCX);  // scratch slots (memory mode)
    pool_patch_at_ = a_.mov_ri64(R15, 0);  // const pool, patched at install
  }

  void epilogue() {
    if (b_.result_slot < b_.n_slots) {
      ld_slot(0, b_.result_slot);
    } else {
      a_.xorpd_rr(0, 0);
    }
    a_.pop(R15);
    a_.pop(R14);
    a_.pop(R13);
    a_.pop(RBP);
    a_.pop(RBX);
    a_.ret();
  }

  /// temp xmm t = slot s (full-width copy in reg mode; upper-lane
  /// garbage is harmless — only the low lane ever carries meaning).
  void ld_slot(Xmm t, uint16_t s) {
    if (reg_mode_) {
      a_.movapd_rr(t, xreg(s));
    } else {
      a_.movsd_load(t, R14, off(s));
    }
  }
  void st_slot(uint16_t s, Xmm t) {
    if (reg_mode_) {
      a_.movapd_rr(xreg(s), t);
    } else {
      a_.movsd_store(R14, off(s), t);
    }
  }

  using RR = void (Asm::*)(Xmm, Xmm);
  using RM = void (Asm::*)(Xmm, Gpr, int32_t);

  /// dst = a OP rhs, where rhs is slot b (b_const=false) or consts[b].
  void binop(RR rr, RM rm, const Instr& in, bool b_const) {
    const bool in_place = reg_mode_ && in.dst == in.a;
    const Xmm t = in_place ? xreg(in.dst) : Xmm{0};
    if (!in_place) ld_slot(0, in.a);
    if (b_const) {
      (a_.*rm)(t, R15, koff(in.b));
    } else if (reg_mode_) {
      (a_.*rr)(t, xreg(in.b));
    } else {
      (a_.*rm)(t, R14, off(in.b));
    }
    if (!in_place) st_slot(in.dst, 0);
  }

  /// Applies cmpsd with predicate `pred` to temp xmm0 against slot/const
  /// rhs, then converts the all-ones/zero mask to 1.0/0.0 and stores.
  void mask_to_bool_and_store(uint16_t dst) {
    a_.movsd_load(1, R15, off_one_);
    a_.andpd_rr(0, 1);
    st_slot(dst, 0);
  }

  /// dst = (lhs pred rhs) ? 1 : 0. flip=false: lhs = slot a, rhs = slot
  /// b or consts[b]. flip=true (Gt/Ge lowered as reversed Lt/Le): lhs =
  /// slot b or consts[b], rhs = slot a.
  void cmp_op(const Instr& in, uint8_t pred, bool flip, bool b_const) {
    if (!flip) {
      ld_slot(0, in.a);
      if (b_const) {
        a_.cmpsd_rm(0, R15, koff(in.b), pred);
      } else if (reg_mode_) {
        a_.cmpsd_rr(0, xreg(in.b), pred);
      } else {
        a_.cmpsd_rm(0, R14, off(in.b), pred);
      }
    } else {
      if (b_const) {
        a_.movsd_load(0, R15, koff(in.b));
      } else {
        ld_slot(0, in.b);
      }
      if (reg_mode_) {
        a_.cmpsd_rr(0, xreg(in.a), pred);
      } else {
        a_.cmpsd_rm(0, R14, off(in.a), pred);
      }
    }
    mask_to_bool_and_store(in.dst);
  }

  /// dst = b == 0 ? 0 : a / b (rhs from slot or const pool).
  void div_op(const Instr& in, bool b_const) {
    if (b_const) {
      a_.movsd_load(1, R15, koff(in.b));
    } else {
      ld_slot(1, in.b);
    }
    a_.movapd_rr(2, 1);
    a_.xorpd_rr(3, 3);
    a_.cmpsd_rr(2, 3, kCmpNeq);  // mask: b != 0 (NaN divisor -> true -> NaN out)
    ld_slot(0, in.a);
    a_.divsd_rr(0, 1);
    a_.andpd_rr(0, 2);
    st_slot(in.dst, 0);
  }

  /// dst = (1 - w) * s[a] + w * s[b]; w = slot c or consts[c].
  void ewma_op(const Instr& in, bool c_const) {
    a_.movsd_load(0, R15, off_one_);
    if (c_const) {
      a_.subsd_rm(0, R15, koff(in.c));
    } else if (reg_mode_) {
      a_.subsd_rr(0, xreg(in.c));
    } else {
      a_.subsd_rm(0, R14, off(in.c));
    }
    if (reg_mode_) {
      a_.mulsd_rr(0, xreg(in.a));
    } else {
      a_.mulsd_rm(0, R14, off(in.a));
    }
    if (c_const) {
      a_.movsd_load(1, R15, koff(in.c));
    } else {
      ld_slot(1, in.c);
    }
    if (reg_mode_) {
      a_.mulsd_rr(1, xreg(in.b));
    } else {
      a_.mulsd_rm(1, R14, off(in.b));
    }
    a_.addsd_rr(0, 1);
    st_slot(in.dst, 0);
  }

  /// Blend through the mask already in xmm0: dst = mask ? s[b] : s[c].
  void blend_and_store(const Instr& in) {
    ld_slot(1, in.b);
    a_.andpd_rr(1, 0);  // mask & b
    ld_slot(2, in.c);
    a_.andnpd_rr(0, 2);  // ~mask & c
    a_.orpd_rr(0, 1);
    st_slot(in.dst, 0);
  }

  void helper_call(const Instr& in, uint64_t addr, bool binary) {
    // Memory mode only (mode selection excludes helpers from reg mode):
    // every live value is in the scratch array, so clobbering all xmm
    // and the caller-saved GPRs is fine. rsp is 16-aligned here (see
    // prologue).
    a_.movsd_load(0, R14, off(in.a));
    if (binary) a_.movsd_load(1, R14, off(in.b));
    a_.mov_ri64(RAX, addr);
    a_.call(RAX);
    a_.movsd_store(R14, off(in.dst), 0);
  }

  bool lower(const Instr& in) {
    switch (in.op) {
      case OpCode::LoadConst:
        if (reg_mode_) {
          a_.movsd_load(xreg(in.dst), R15, koff(in.a));
        } else {
          a_.movsd_load(0, R15, koff(in.a));
          st_slot(in.dst, 0);
        }
        return true;
      case OpCode::LoadFold:
        if (reg_mode_) {
          a_.movsd_load(xreg(in.dst), RBX, off(in.a));
        } else {
          a_.movsd_load(0, RBX, off(in.a));
          st_slot(in.dst, 0);
        }
        return true;
      case OpCode::LoadPkt:
        if (reg_mode_) {
          a_.movsd_load(xreg(in.dst), RBP, off(in.a));
        } else {
          a_.movsd_load(0, RBP, off(in.a));
          st_slot(in.dst, 0);
        }
        return true;
      case OpCode::LoadVar:
        if (reg_mode_) {
          a_.movsd_load(xreg(in.dst), R13, off(in.a));
        } else {
          a_.movsd_load(0, R13, off(in.a));
          st_slot(in.dst, 0);
        }
        return true;

      case OpCode::Neg:
        ld_slot(0, in.a);
        a_.movsd_load(1, R15, off_negzero_);
        a_.xorpd_rr(0, 1);
        st_slot(in.dst, 0);
        return true;
      case OpCode::Not:
        ld_slot(0, in.a);
        a_.xorpd_rr(1, 1);
        a_.cmpsd_rr(0, 1, kCmpEq);  // NaN -> false -> 0, like `NaN == 0`
        mask_to_bool_and_store(in.dst);
        return true;
      case OpCode::Sqrt:
        // a <= 0 ? 0 : sqrt(a); unordered LE is false, so NaN passes
        // through sqrtsd (sqrt(NaN) == NaN, same as the interpreter).
        ld_slot(1, in.a);
        a_.xorpd_rr(2, 2);
        a_.cmpsd_rr(1, 2, kCmpLe);
        ld_slot(0, in.a);
        a_.sqrtsd_rr(0, 0);
        a_.andnpd_rr(1, 0);
        st_slot(in.dst, 1);
        return true;
      case OpCode::Abs:
        a_.movsd_load(1, R15, off_negzero_);
        ld_slot(0, in.a);
        a_.andnpd_rr(1, 0);  // ~signbit & a
        st_slot(in.dst, 1);
        return true;
      case OpCode::Log:
        helper_call(in, reinterpret_cast<uint64_t>(&ccp_jit_log), false);
        return true;
      case OpCode::Exp:
        helper_call(in, reinterpret_cast<uint64_t>(&ccp_jit_exp), false);
        return true;
      case OpCode::Cbrt:
        helper_call(in, reinterpret_cast<uint64_t>(&ccp_jit_cbrt), false);
        return true;
      case OpCode::Pow:
        helper_call(in, reinterpret_cast<uint64_t>(&ccp_jit_pow), true);
        return true;

      case OpCode::Add:
        binop(&Asm::addsd_rr, &Asm::addsd_rm, in, false);
        return true;
      case OpCode::Sub:
        binop(&Asm::subsd_rr, &Asm::subsd_rm, in, false);
        return true;
      case OpCode::Mul:
        binop(&Asm::mulsd_rr, &Asm::mulsd_rm, in, false);
        return true;
      case OpCode::Div:
        div_op(in, false);
        return true;
      case OpCode::Min:
        binop(&Asm::minsd_rr, &Asm::minsd_rm, in, false);
        return true;
      case OpCode::Max:
        binop(&Asm::maxsd_rr, &Asm::maxsd_rm, in, false);
        return true;

      case OpCode::Lt:
        cmp_op(in, kCmpLt, false, false);
        return true;
      case OpCode::Le:
        cmp_op(in, kCmpLe, false, false);
        return true;
      case OpCode::Gt:
        cmp_op(in, kCmpLt, true, false);
        return true;
      case OpCode::Ge:
        cmp_op(in, kCmpLe, true, false);
        return true;
      case OpCode::Eq:
        cmp_op(in, kCmpEq, false, false);
        return true;
      case OpCode::Ne:
        cmp_op(in, kCmpNeq, false, false);
        return true;
      case OpCode::And:
      case OpCode::Or:
        ld_slot(0, in.a);
        a_.xorpd_rr(2, 2);
        a_.cmpsd_rr(0, 2, kCmpNeq);  // a != 0 (NaN -> true, like C)
        ld_slot(1, in.b);
        a_.cmpsd_rr(1, 2, kCmpNeq);
        if (in.op == OpCode::And) {
          a_.andpd_rr(0, 1);
        } else {
          a_.orpd_rr(0, 1);
        }
        mask_to_bool_and_store(in.dst);
        return true;

      case OpCode::Select:
        ld_slot(0, in.a);
        a_.xorpd_rr(1, 1);
        a_.cmpsd_rr(0, 1, kCmpNeq);  // mask: a != 0
        blend_and_store(in);
        return true;
      case OpCode::SelGtz:
        // mask: 0 < a (unordered false, so NaN selects c like `NaN > 0`).
        a_.xorpd_rr(0, 0);
        if (reg_mode_) {
          a_.cmpsd_rr(0, xreg(in.a), kCmpLt);
        } else {
          a_.cmpsd_rm(0, R14, off(in.a), kCmpLt);
        }
        blend_and_store(in);
        return true;
      case OpCode::Ewma:
        ewma_op(in, false);
        return true;
      case OpCode::StoreFold:
        if (reg_mode_) {
          a_.movsd_store(RBX, off(in.a), xreg(in.b));
        } else {
          a_.movsd_load(0, R14, off(in.b));
          a_.movsd_store(RBX, off(in.a), 0);
        }
        return true;

      case OpCode::AddC:
        binop(&Asm::addsd_rr, &Asm::addsd_rm, in, true);
        return true;
      case OpCode::SubC:
        binop(&Asm::subsd_rr, &Asm::subsd_rm, in, true);
        return true;
      case OpCode::MulC:
        binop(&Asm::mulsd_rr, &Asm::mulsd_rm, in, true);
        return true;
      case OpCode::DivC:
        div_op(in, true);
        return true;
      case OpCode::MinC:
        binop(&Asm::minsd_rr, &Asm::minsd_rm, in, true);
        return true;
      case OpCode::MaxC:
        binop(&Asm::maxsd_rr, &Asm::maxsd_rm, in, true);
        return true;
      case OpCode::LtC:
        cmp_op(in, kCmpLt, false, true);
        return true;
      case OpCode::LeC:
        cmp_op(in, kCmpLe, false, true);
        return true;
      case OpCode::GtC:
        cmp_op(in, kCmpLt, true, true);
        return true;
      case OpCode::GeC:
        cmp_op(in, kCmpLe, true, true);
        return true;
      case OpCode::EqC:
        cmp_op(in, kCmpEq, false, true);
        return true;
      case OpCode::NeC:
        cmp_op(in, kCmpNeq, false, true);
        return true;
      case OpCode::EwmaC:
        ewma_op(in, true);
        return true;
    }
    return false;  // unknown opcode: decline, caller falls back to the VM
  }

  Asm a_;
  const CodeBlock& b_;
  bool reg_mode_;
  std::vector<double> pool_;
  int32_t off_negzero_ = 0;
  int32_t off_one_ = 0;
  size_t pool_patch_at_ = 0;
};

// Batch (cross-flow) lowering: one loop over lane pairs, every scalar
// instruction mirrored by its packed-double twin. The struct-of-arrays
// row stride is lang::kBatchLanes doubles (128 bytes), so element
// (row r, lane l) of every matrix sits at [base + 128*r + 8*l] and the
// loop variable r10 carries the 16-byte lane-pair offset. Constants are
// duplicated into 16-byte pairs in the pool so one movupd broadcasts
// them. There are no calls inside the kernel (helper-bearing programs
// are rejected up front), so the only callee-saved register touched is
// r15 and rsp alignment never matters.
//
// Fixed register plan (SysV args left in place; no calls to clobber them):
//   rdi = fold SoA   rsi = pkt SoA   rdx = vars SoA   rcx = scratch SoA
//   r8  = remaining lane pairs (loop counter)
//   r10 = lane byte offset (+16 per iteration)
//   r15 = const pool (movabs, patched by CodeRegion)
class BatchBlockCompiler {
 public:
  explicit BatchBlockCompiler(const CodeBlock& b) : b_(b) {
    // Duplicate every constant into a 16-byte pair; koff() addresses the
    // pair, and a single movupd fills both lanes.
    pool_.reserve(2 * b.consts.size() + 4);
    for (const double c : b.consts) {
      pool_.push_back(c);
      pool_.push_back(c);
    }
    off_negzero_ = static_cast<int32_t>(pool_.size() * 8);
    pool_.push_back(-0.0);
    pool_.push_back(-0.0);
    off_one_ = static_cast<int32_t>(pool_.size() * 8);
    pool_.push_back(1.0);
    pool_.push_back(1.0);
  }

  std::optional<CompiledBlock> run() {
    if (has_helper_call(b_)) return std::nullopt;  // no packed libm forms
    prologue();
    for (const Instr& in : b_.code) {
      if (!lower(in)) return std::nullopt;
    }
    epilogue();
    CompiledBlock out;
    out.code = a_.code();
    out.pool = std::move(pool_);
    out.pool_patch_at = pool_patch_at_;
    out.reg_cached = false;
    return out;
  }

 private:
  /// Byte offset of SoA row `i` (stride kBatchLanes doubles).
  static int32_t row(uint16_t i) {
    return static_cast<int32_t>(i) * static_cast<int32_t>(kBatchLanes * 8);
  }
  /// Byte offset of const pair `i` in the pool.
  int32_t koff(uint16_t i) const { return static_cast<int32_t>(i) * 16; }

  void prologue() {
    a_.push(R15);
    pool_patch_at_ = a_.mov_ri64(R15, 0);  // patched at install
    a_.test_rr(R8, R8);
    jz_done_at_ = a_.jz_rel32();  // zero pairs: fall through to the exit
    a_.xor_rr(R10, R10);
    loop_top_ = a_.size();
  }

  void epilogue() {
    a_.add_ri8(R10, 16);
    a_.dec_r(R8);
    const size_t jnz_at = a_.jnz_rel32();
    a_.patch_rel32(jnz_at, loop_top_);
    a_.patch_rel32(jz_done_at_, a_.size());
    a_.pop(R15);
    a_.ret();
  }

  /// temp xmm t = scratch slot s (both lanes of the pair).
  void ld_slot(Xmm t, uint16_t s) { a_.movupd_load_idx(t, RCX, R10, row(s)); }
  void st_slot(uint16_t s, Xmm t) { a_.movupd_store_idx(RCX, R10, row(s), t); }
  /// temp xmm t = rhs operand: const pair (b_const) or scratch slot b.
  void ld_rhs(Xmm t, uint16_t b, bool b_const) {
    if (b_const) {
      a_.movupd_load(t, R15, koff(b));
    } else {
      ld_slot(t, b);
    }
  }

  using RR = void (Asm::*)(Xmm, Xmm);

  void binop(RR rr, const Instr& in, bool b_const) {
    ld_slot(0, in.a);
    ld_rhs(1, in.b, b_const);
    (a_.*rr)(0, 1);
    st_slot(in.dst, 0);
  }

  /// Converts the all-ones/zero lane masks in xmm0 to 1.0/0.0 and stores.
  void mask_to_bool_and_store(uint16_t dst) {
    a_.movupd_load(1, R15, off_one_);
    a_.andpd_rr(0, 1);
    st_slot(dst, 0);
  }

  void cmp_op(const Instr& in, uint8_t pred, bool flip, bool b_const) {
    if (!flip) {
      ld_slot(0, in.a);
      ld_rhs(1, in.b, b_const);
    } else {
      ld_rhs(0, in.b, b_const);
      ld_slot(1, in.a);
    }
    a_.cmppd_rr(0, 1, pred);
    mask_to_bool_and_store(in.dst);
  }

  /// dst = b == 0 ? 0 : a / b, per lane (same mask scheme as scalar).
  void div_op(const Instr& in, bool b_const) {
    ld_rhs(1, in.b, b_const);
    a_.movapd_rr(2, 1);
    a_.xorpd_rr(3, 3);
    a_.cmppd_rr(2, 3, kCmpNeq);  // mask: b != 0 (NaN divisor -> true -> NaN out)
    ld_slot(0, in.a);
    a_.divpd_rr(0, 1);
    a_.andpd_rr(0, 2);
    st_slot(in.dst, 0);
  }

  /// dst = (1 - w) * s[a] + w * s[b]; same op order as the scalar form.
  void ewma_op(const Instr& in, bool c_const) {
    a_.movupd_load(0, R15, off_one_);
    ld_rhs(1, in.c, c_const);  // w, kept live for the second product
    a_.subpd_rr(0, 1);
    ld_slot(2, in.a);
    a_.mulpd_rr(0, 2);
    ld_slot(2, in.b);
    a_.mulpd_rr(1, 2);
    a_.addpd_rr(0, 1);
    st_slot(in.dst, 0);
  }

  /// Blend through the lane masks already in xmm0: dst = mask ? b : c.
  void blend_and_store(const Instr& in) {
    ld_slot(1, in.b);
    a_.andpd_rr(1, 0);  // mask & b
    ld_slot(2, in.c);
    a_.andnpd_rr(0, 2);  // ~mask & c
    a_.orpd_rr(0, 1);
    st_slot(in.dst, 0);
  }

  bool lower(const Instr& in) {
    switch (in.op) {
      case OpCode::LoadConst:
        a_.movupd_load(0, R15, koff(in.a));
        st_slot(in.dst, 0);
        return true;
      case OpCode::LoadFold:
        a_.movupd_load_idx(0, RDI, R10, row(in.a));
        st_slot(in.dst, 0);
        return true;
      case OpCode::LoadPkt:
        a_.movupd_load_idx(0, RSI, R10, row(in.a));
        st_slot(in.dst, 0);
        return true;
      case OpCode::LoadVar:
        a_.movupd_load_idx(0, RDX, R10, row(in.a));
        st_slot(in.dst, 0);
        return true;

      case OpCode::Neg:
        ld_slot(0, in.a);
        a_.movupd_load(1, R15, off_negzero_);
        a_.xorpd_rr(0, 1);
        st_slot(in.dst, 0);
        return true;
      case OpCode::Not:
        ld_slot(0, in.a);
        a_.xorpd_rr(1, 1);
        a_.cmppd_rr(0, 1, kCmpEq);
        mask_to_bool_and_store(in.dst);
        return true;
      case OpCode::Sqrt:
        ld_slot(1, in.a);
        a_.xorpd_rr(2, 2);
        a_.cmppd_rr(1, 2, kCmpLe);  // a <= 0 (unordered false: NaN -> sqrt)
        ld_slot(0, in.a);
        a_.sqrtpd_rr(0, 0);
        a_.andnpd_rr(1, 0);
        st_slot(in.dst, 1);
        return true;
      case OpCode::Abs:
        a_.movupd_load(1, R15, off_negzero_);
        ld_slot(0, in.a);
        a_.andnpd_rr(1, 0);  // ~signbit & a
        st_slot(in.dst, 1);
        return true;

      case OpCode::Log:
      case OpCode::Exp:
      case OpCode::Cbrt:
      case OpCode::Pow:
        return false;  // helper call: SIMD-ineligible (caught up front too)

      case OpCode::Add:
        binop(&Asm::addpd_rr, in, false);
        return true;
      case OpCode::Sub:
        binop(&Asm::subpd_rr, in, false);
        return true;
      case OpCode::Mul:
        binop(&Asm::mulpd_rr, in, false);
        return true;
      case OpCode::Div:
        div_op(in, false);
        return true;
      case OpCode::Min:
        binop(&Asm::minpd_rr, in, false);
        return true;
      case OpCode::Max:
        binop(&Asm::maxpd_rr, in, false);
        return true;

      case OpCode::Lt:
        cmp_op(in, kCmpLt, false, false);
        return true;
      case OpCode::Le:
        cmp_op(in, kCmpLe, false, false);
        return true;
      case OpCode::Gt:
        cmp_op(in, kCmpLt, true, false);
        return true;
      case OpCode::Ge:
        cmp_op(in, kCmpLe, true, false);
        return true;
      case OpCode::Eq:
        cmp_op(in, kCmpEq, false, false);
        return true;
      case OpCode::Ne:
        cmp_op(in, kCmpNeq, false, false);
        return true;
      case OpCode::And:
      case OpCode::Or:
        ld_slot(0, in.a);
        a_.xorpd_rr(2, 2);
        a_.cmppd_rr(0, 2, kCmpNeq);  // a != 0 (NaN -> true, like C)
        ld_slot(1, in.b);
        a_.cmppd_rr(1, 2, kCmpNeq);
        if (in.op == OpCode::And) {
          a_.andpd_rr(0, 1);
        } else {
          a_.orpd_rr(0, 1);
        }
        mask_to_bool_and_store(in.dst);
        return true;

      case OpCode::Select:
        ld_slot(0, in.a);
        a_.xorpd_rr(1, 1);
        a_.cmppd_rr(0, 1, kCmpNeq);  // mask: a != 0
        blend_and_store(in);
        return true;
      case OpCode::SelGtz:
        a_.xorpd_rr(0, 0);
        ld_slot(1, in.a);
        a_.cmppd_rr(0, 1, kCmpLt);  // mask: 0 < a (unordered false)
        blend_and_store(in);
        return true;
      case OpCode::Ewma:
        ewma_op(in, false);
        return true;
      case OpCode::StoreFold:
        ld_slot(0, in.b);
        a_.movupd_store_idx(RDI, R10, row(in.a), 0);
        return true;

      case OpCode::AddC:
        binop(&Asm::addpd_rr, in, true);
        return true;
      case OpCode::SubC:
        binop(&Asm::subpd_rr, in, true);
        return true;
      case OpCode::MulC:
        binop(&Asm::mulpd_rr, in, true);
        return true;
      case OpCode::DivC:
        div_op(in, true);
        return true;
      case OpCode::MinC:
        binop(&Asm::minpd_rr, in, true);
        return true;
      case OpCode::MaxC:
        binop(&Asm::maxpd_rr, in, true);
        return true;
      case OpCode::LtC:
        cmp_op(in, kCmpLt, false, true);
        return true;
      case OpCode::LeC:
        cmp_op(in, kCmpLe, false, true);
        return true;
      case OpCode::GtC:
        cmp_op(in, kCmpLt, true, true);
        return true;
      case OpCode::GeC:
        cmp_op(in, kCmpLe, true, true);
        return true;
      case OpCode::EqC:
        cmp_op(in, kCmpEq, false, true);
        return true;
      case OpCode::NeC:
        cmp_op(in, kCmpNeq, false, true);
        return true;
      case OpCode::EwmaC:
        ewma_op(in, true);
        return true;
    }
    return false;  // unknown opcode: decline, caller stays scalar
  }

  Asm a_;
  const CodeBlock& b_;
  std::vector<double> pool_;
  int32_t off_negzero_ = 0;
  int32_t off_one_ = 0;
  size_t pool_patch_at_ = 0;
  size_t loop_top_ = 0;
  size_t jz_done_at_ = 0;
};

}  // namespace

std::optional<CompiledBlock> compile_block(const CodeBlock& block) {
  // Degenerate blocks (the interpreter treats them as "do nothing,
  // return 0") still get the standard prologue/epilogue so the const
  // pool patch site exists.
  return BlockCompiler(block).run();
}

std::optional<CompiledBlock> compile_block_batch(const CodeBlock& block) {
  // An empty fold never reaches here in practice (FoldMachine::install
  // skips the JIT for empty blocks), but an empty-body kernel is valid
  // and harmless if it does.
  return BatchBlockCompiler(block).run();
}

}  // namespace ccp::lang::jit
