// Public surface of the fold-program JIT.
//
// The datapath asks for native code at program-install time
// (FoldMachine::install -> get_or_compile); the per-ACK path then calls
// the returned function pointer directly. Compilation happens once per
// CompiledProgram — the handle is cached on the program itself, so every
// flow on every shard that shares the program (via compile_text_shared)
// shares one code region, and the code dies exactly when the last user
// of the program does.
//
// Failure is always transparent: on non-x86-64 builds, with
// -DCCP_ENABLE_JIT=OFF, on an emit/mmap failure, or under the forced
// test hook, get_or_compile returns null, the failure is latched on the
// program (no recompile storms), ccp_jit_fallbacks_total ticks, and the
// caller keeps interpreting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "lang/pkt_fields.hpp"

namespace ccp::lang {
struct CompiledProgram;
}

namespace ccp::lang::jit {

/// Runtime dispatch mode, consulted at program install (not per ACK):
///   Off    — always interpret.
///   On     — native code when available, interpreter otherwise.
///   Verify — run BOTH per ACK: the JIT on a shadow copy of the fold
///            state, the interpreter authoritatively; any bit difference
///            in fold state or result ticks ccp_jit_verify_mismatches.
/// Overridable via CCP_JIT=off|on|verify (read on first use).
enum class JitMode : uint8_t { Off, On, Verify };

void set_mode(JitMode m);
JitMode mode();

/// True when native execution is possible at all in this build/arch.
bool available();

/// Test hook: makes every subsequent compile fail, exercising the
/// interpreter-fallback latch on real install paths.
void set_force_emit_failure(bool on);

/// Signature of a compiled fold block. Mirrors eval_block: folds one
/// ACK into `fold_state` in place and returns the result-slot value.
/// `scratch` must hold at least the block's n_slots doubles (unused in
/// reg-cached mode but always passed).
using FoldFn = double (*)(double* fold_state, const double* pkt,
                          const double* vars, double* scratch);

/// Signature of a compiled cross-flow batch kernel (compile_block_batch):
/// all four register files are struct-of-arrays matrices with row stride
/// lang::kBatchLanes doubles, and the kernel folds lanes [0, 2*n_pairs)
/// in one loop, two lanes per iteration (packed SSE2). Odd lane counts
/// are the caller's problem: pad by duplicating the last live lane's
/// columns and discard the ghost lane's results. Per-lane results are
/// bit-identical to FoldFn/eval_block on that lane.
using BatchFoldFn = void (*)(double* fold_soa, const double* pkt_soa,
                             const double* vars_soa, double* scratch_soa,
                             uint64_t n_pairs);

/// Opaque owner of one program's code region (definition in jit.cc).
struct Handle;

/// Returns the shared native compilation of prog.fold_block, compiling
/// on first call, or null if the JIT is unavailable or this program
/// latched a failure. Thread-safe (global compile mutex); never throws.
/// When the build enables SIMD (CCP_ENABLE_SIMD, the default) and the
/// fold is SIMD-eligible (pure arithmetic — no pow/cbrt/log/exp), the
/// handle also carries a batch kernel.
std::shared_ptr<const Handle> get_or_compile(const CompiledProgram& prog);

FoldFn entry(const Handle& h);
uint32_t code_bytes(const Handle& h);
bool reg_cached(const Handle& h);

/// The batch kernel, or null (SIMD disabled, ineligible fold, or emit
/// failure — scalar execution always stands alone).
BatchFoldFn batch_entry(const Handle& h);
uint32_t batch_code_bytes(const Handle& h);

/// True when this build can emit packed-SIMD batch kernels at all
/// (x86-64 JIT present and not compiled with -DCCP_ENABLE_SIMD=OFF).
bool simd_available();

/// The generated code reads packet fields as a flat double array
/// (LoadPkt f => load [pkt + 8f]); these asserts pin PktInfo to that
/// layout in PktField enum order.
static_assert(std::is_standard_layout_v<PktInfo>);
static_assert(sizeof(PktInfo) == sizeof(double) * kNumPktFields);
static_assert(offsetof(PktInfo, rtt_us) ==
              sizeof(double) * static_cast<size_t>(PktField::RttUs));
static_assert(offsetof(PktInfo, snd_rate_bps) ==
              sizeof(double) * static_cast<size_t>(PktField::SndRateBps));
static_assert(offsetof(PktInfo, mss) ==
              sizeof(double) * static_cast<size_t>(PktField::Mss));
static_assert(offsetof(PktInfo, rate_bps) ==
              sizeof(double) * static_cast<size_t>(PktField::RateBps));

inline const double* pkt_ptr(const PktInfo& p) {
  return reinterpret_cast<const double*>(&p);
}

}  // namespace ccp::lang::jit
