#include "lang/pkt_fields.hpp"

#include <array>
#include <utility>

namespace ccp::lang {
namespace {

constexpr std::array<std::pair<PktField, std::string_view>, kNumPktFields> kNames = {{
    {PktField::RttUs, "rtt"},
    {PktField::BytesAcked, "bytes_acked"},
    {PktField::PacketsAcked, "packets_acked"},
    {PktField::LostPackets, "lost"},
    {PktField::Ecn, "ecn"},
    {PktField::WasTimeout, "was_timeout"},
    {PktField::SndRateBps, "snd_rate"},
    {PktField::RcvRateBps, "rcv_rate"},
    {PktField::BytesInFlight, "bytes_in_flight"},
    {PktField::PacketsInFlight, "packets_in_flight"},
    {PktField::BytesPending, "bytes_pending"},
    {PktField::NowUs, "now"},
    {PktField::Mss, "mss"},
    {PktField::Cwnd, "cwnd"},
    {PktField::RateBps, "rate"},
}};

}  // namespace

std::string_view pkt_field_name(PktField f) {
  for (const auto& [field, name] : kNames) {
    if (field == f) return name;
  }
  return "?";
}

std::optional<PktField> pkt_field_from_name(std::string_view name) {
  for (const auto& [field, n] : kNames) {
    if (n == name) return field;
  }
  return std::nullopt;
}

}  // namespace ccp::lang
