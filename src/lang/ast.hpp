// Abstract syntax for datapath programs: fold functions over per-packet
// measurements plus the sequential control language of Table 2.
//
// Expressions live in a flat arena (`ExprArena`) indexed by `ExprId` —
// cheap to copy, trivially walkable by the compiler, no recursive
// ownership.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/pkt_fields.hpp"

namespace ccp::lang {

using ExprId = uint32_t;
inline constexpr ExprId kInvalidExpr = UINT32_MAX;

enum class ExprKind : uint8_t {
  Const,       // literal number
  FoldRef,     // reference to a fold register (payload: register index)
  PktRef,      // reference to a packet field
  VarRef,      // reference to an install-time variable ($name)
  Unary,
  Binary,
  Ternary,
};

enum class UnaryOp : uint8_t { Neg, Not, Sqrt, Abs, Log, Exp, Cbrt };

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Pow, Min, Max,
  Lt, Le, Gt, Ge, Eq, Ne, And, Or,
};

enum class TernaryOp : uint8_t {
  If,    // If(cond, then, else) — strict (both branches evaluated)
  Ewma,  // Ewma(old, sample, gain): (1-gain)*old + gain*sample
};

struct ExprNode {
  ExprKind kind;
  union {
    double constant;        // Const
    uint32_t index;         // FoldRef (register index) / VarRef (var index)
    PktField field;         // PktRef
    UnaryOp unary_op;       // Unary
    BinaryOp binary_op;     // Binary
    TernaryOp ternary_op;   // Ternary
  };
  ExprId child[3] = {kInvalidExpr, kInvalidExpr, kInvalidExpr};
};

/// Flat expression storage. ExprIds are stable; children always precede
/// nothing in particular (the tree may be built in any order).
class ExprArena {
 public:
  ExprId add_const(double v) {
    ExprNode n{ExprKind::Const, {.constant = v}, {}};
    return push(n);
  }
  ExprId add_fold_ref(uint32_t reg) {
    ExprNode n{ExprKind::FoldRef, {.index = reg}, {}};
    return push(n);
  }
  ExprId add_pkt_ref(PktField f) {
    ExprNode n{ExprKind::PktRef, {.field = f}, {}};
    return push(n);
  }
  ExprId add_var_ref(uint32_t var) {
    ExprNode n{ExprKind::VarRef, {.index = var}, {}};
    return push(n);
  }
  ExprId add_unary(UnaryOp op, ExprId a) {
    ExprNode n{ExprKind::Unary, {.unary_op = op}, {}};
    n.child[0] = a;
    return push(n);
  }
  ExprId add_binary(BinaryOp op, ExprId a, ExprId b) {
    ExprNode n{ExprKind::Binary, {.binary_op = op}, {}};
    n.child[0] = a;
    n.child[1] = b;
    return push(n);
  }
  ExprId add_ternary(TernaryOp op, ExprId a, ExprId b, ExprId c) {
    ExprNode n{ExprKind::Ternary, {.ternary_op = op}, {}};
    n.child[0] = a;
    n.child[1] = b;
    n.child[2] = c;
    return push(n);
  }

  const ExprNode& at(ExprId id) const { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }

 private:
  ExprId push(const ExprNode& n) {
    nodes_.push_back(n);
    return static_cast<ExprId>(nodes_.size() - 1);
  }
  std::vector<ExprNode> nodes_;
};

/// One fold register: constant-space per-packet state (§2.4, "fold
/// function over measurements").
struct FoldRegister {
  std::string name;
  ExprId init = kInvalidExpr;    // evaluated at install and (if volatile) on Report
  ExprId update = kInvalidExpr;  // evaluated once per ACK; result stored
  bool is_volatile = false;      // reset to init after each Report
  bool urgent = false;           // a change triggers an immediate report (§2.1)
};

/// One step of the control program (Table 2 primitives).
struct ControlInstr {
  enum class Op : uint8_t { SetRate, SetCwnd, Wait, WaitRtts, Report };
  Op op;
  ExprId arg = kInvalidExpr;  // unused for Report
};

/// A complete datapath program: the unit of Install() (Table 3).
struct Program {
  ExprArena arena;
  std::vector<FoldRegister> folds;
  std::vector<ControlInstr> control;
  std::vector<std::string> vars;  // install-time variable names ($-prefixed in text)

  /// Index of a fold register by name, or -1.
  int fold_index(std::string_view name) const {
    for (size_t i = 0; i < folds.size(); ++i) {
      if (folds[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
  /// Index of an install var by name, adding it if new.
  uint32_t var_index(std::string_view name) {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == name) return static_cast<uint32_t>(i);
    }
    vars.emplace_back(name);
    return static_cast<uint32_t>(vars.size() - 1);
  }
};

}  // namespace ccp::lang
