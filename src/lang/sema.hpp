// Semantic analysis: the checks that make a parsed program safe to run
// on a datapath unsupervised (§2.2, §5 "Is CCP safe to deploy?").
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace ccp::lang {

struct SemaIssue {
  enum class Severity { Error, Warning };
  Severity severity;
  std::string message;
};

/// Returns all issues found. A program with any Error must not be
/// installed; `check_or_throw` wraps this for callers that want failure
/// as an exception.
///
/// Checks:
///  - control block present and contains at least one Report()
///    (a program that never reports starves the agent of measurements);
///  - Wait/WaitRtts with a constant argument must be positive;
///  - division by a literal zero;
///  - ewma gain, when constant, must lie in (0, 1];
///  - every control instruction argument expression is well-formed;
///  - warning: fold register that no expression and no report consumer
///    references is dead weight (still legal).
std::vector<SemaIssue> analyze(const Program& prog);

/// Throws ProgramError listing all errors if any Error-severity issue
/// exists.
void check_or_throw(const Program& prog);

}  // namespace ccp::lang
