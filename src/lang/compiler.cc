#include "lang/compiler.hpp"

#include <cmath>
#include <limits>

#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace ccp::lang {
namespace {

/// Emits bytecode for expression trees into a CodeBlock.
class BlockBuilder {
 public:
  explicit BlockBuilder(const ExprArena& arena) : arena_(arena) {}

  uint16_t emit_expr(ExprId id) {
    const ExprNode& n = arena_.at(id);
    switch (n.kind) {
      case ExprKind::Const: {
        const uint16_t dst = alloc();
        block_.code.push_back({OpCode::LoadConst, dst, intern_const(n.constant), 0, 0});
        return dst;
      }
      case ExprKind::FoldRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadFold, dst, static_cast<uint16_t>(n.index), 0, 0});
        return dst;
      }
      case ExprKind::PktRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadPkt, dst, static_cast<uint16_t>(n.field), 0, 0});
        return dst;
      }
      case ExprKind::VarRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadVar, dst, static_cast<uint16_t>(n.index), 0, 0});
        return dst;
      }
      case ExprKind::Unary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t dst = alloc();
        block_.code.push_back({unary_opcode(n.unary_op), dst, a, 0, 0});
        return dst;
      }
      case ExprKind::Binary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t b = emit_expr(n.child[1]);
        const uint16_t dst = alloc();
        block_.code.push_back({binary_opcode(n.binary_op), dst, a, b, 0});
        return dst;
      }
      case ExprKind::Ternary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t b = emit_expr(n.child[1]);
        const uint16_t c = emit_expr(n.child[2]);
        const uint16_t dst = alloc();
        const OpCode op =
            n.ternary_op == TernaryOp::If ? OpCode::Select : OpCode::Ewma;
        block_.code.push_back({op, dst, a, b, c});
        return dst;
      }
    }
    throw ProgramError("internal: unknown expression kind");
  }

  void emit_store_fold(uint16_t reg, uint16_t slot) {
    block_.code.push_back({OpCode::StoreFold, 0, reg, slot, 0});
  }

  CodeBlock take(uint16_t result_slot = 0) {
    block_.n_slots = next_slot_;
    block_.result_slot = result_slot;
    return std::move(block_);
  }

 private:
  uint16_t alloc() {
    if (next_slot_ == std::numeric_limits<uint16_t>::max()) {
      throw ProgramError("expression too large to compile");
    }
    return next_slot_++;
  }

  uint16_t intern_const(double v) {
    for (size_t i = 0; i < block_.consts.size(); ++i) {
      // Bitwise comparison so 0.0 and -0.0 keep distinct entries.
      if (block_.consts[i] == v && std::signbit(block_.consts[i]) == std::signbit(v)) {
        return static_cast<uint16_t>(i);
      }
    }
    block_.consts.push_back(v);
    return static_cast<uint16_t>(block_.consts.size() - 1);
  }

  static OpCode unary_opcode(UnaryOp op) {
    switch (op) {
      case UnaryOp::Neg: return OpCode::Neg;
      case UnaryOp::Not: return OpCode::Not;
      case UnaryOp::Sqrt: return OpCode::Sqrt;
      case UnaryOp::Abs: return OpCode::Abs;
      case UnaryOp::Log: return OpCode::Log;
      case UnaryOp::Exp: return OpCode::Exp;
      case UnaryOp::Cbrt: return OpCode::Cbrt;
    }
    throw ProgramError("internal: unknown unary op");
  }

  static OpCode binary_opcode(BinaryOp op) {
    switch (op) {
      case BinaryOp::Add: return OpCode::Add;
      case BinaryOp::Sub: return OpCode::Sub;
      case BinaryOp::Mul: return OpCode::Mul;
      case BinaryOp::Div: return OpCode::Div;
      case BinaryOp::Pow: return OpCode::Pow;
      case BinaryOp::Min: return OpCode::Min;
      case BinaryOp::Max: return OpCode::Max;
      case BinaryOp::Lt: return OpCode::Lt;
      case BinaryOp::Le: return OpCode::Le;
      case BinaryOp::Gt: return OpCode::Gt;
      case BinaryOp::Ge: return OpCode::Ge;
      case BinaryOp::Eq: return OpCode::Eq;
      case BinaryOp::Ne: return OpCode::Ne;
      case BinaryOp::And: return OpCode::And;
      case BinaryOp::Or: return OpCode::Or;
    }
    throw ProgramError("internal: unknown binary op");
  }

  const ExprArena& arena_;
  CodeBlock block_;
  uint16_t next_slot_ = 0;
};

}  // namespace

CompiledProgram compile(const Program& prog) {
  check_or_throw(prog);

  CompiledProgram out;
  for (const auto& reg : prog.folds) {
    out.fold_names.push_back(reg.name);
    out.volatile_regs.push_back(reg.is_volatile);
    out.urgent_regs.push_back(reg.urgent);
  }
  out.var_names = prog.vars;

  {
    BlockBuilder b(prog.arena);
    for (size_t i = 0; i < prog.folds.size(); ++i) {
      const uint16_t slot = b.emit_expr(prog.folds[i].init);
      b.emit_store_fold(static_cast<uint16_t>(i), slot);
    }
    out.init_block = b.take();
  }
  {
    BlockBuilder b(prog.arena);
    for (size_t i = 0; i < prog.folds.size(); ++i) {
      // Store immediately so later updates observe the new value
      // (sequential fold semantics; see parser.hpp).
      const uint16_t slot = b.emit_expr(prog.folds[i].update);
      b.emit_store_fold(static_cast<uint16_t>(i), slot);
    }
    out.fold_block = b.take();
  }
  for (const auto& instr : prog.control) {
    out.control_ops.push_back(instr.op);
    if (instr.arg == kInvalidExpr) {
      out.control_args.emplace_back();
      continue;
    }
    BlockBuilder b(prog.arena);
    const uint16_t slot = b.emit_expr(instr.arg);
    out.control_args.push_back(b.take(slot));
  }
  return out;
}

CompiledProgram compile_text(std::string_view src) {
  return compile(parse_program(src));
}

}  // namespace ccp::lang
