#include "lang/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "lang/error.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::lang {
namespace {

/// Emits bytecode for expression trees into a CodeBlock.
class BlockBuilder {
 public:
  explicit BlockBuilder(const ExprArena& arena) : arena_(arena) {}

  uint16_t emit_expr(ExprId id) {
    const ExprNode& n = arena_.at(id);
    switch (n.kind) {
      case ExprKind::Const: {
        const uint16_t dst = alloc();
        block_.code.push_back({OpCode::LoadConst, dst, intern_const(n.constant), 0, 0});
        return dst;
      }
      case ExprKind::FoldRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadFold, dst, static_cast<uint16_t>(n.index), 0, 0});
        return dst;
      }
      case ExprKind::PktRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadPkt, dst, static_cast<uint16_t>(n.field), 0, 0});
        return dst;
      }
      case ExprKind::VarRef: {
        const uint16_t dst = alloc();
        block_.code.push_back(
            {OpCode::LoadVar, dst, static_cast<uint16_t>(n.index), 0, 0});
        return dst;
      }
      case ExprKind::Unary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t dst = alloc();
        block_.code.push_back({unary_opcode(n.unary_op), dst, a, 0, 0});
        return dst;
      }
      case ExprKind::Binary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t b = emit_expr(n.child[1]);
        const uint16_t dst = alloc();
        block_.code.push_back({binary_opcode(n.binary_op), dst, a, b, 0});
        return dst;
      }
      case ExprKind::Ternary: {
        const uint16_t a = emit_expr(n.child[0]);
        const uint16_t b = emit_expr(n.child[1]);
        const uint16_t c = emit_expr(n.child[2]);
        const uint16_t dst = alloc();
        const OpCode op =
            n.ternary_op == TernaryOp::If ? OpCode::Select : OpCode::Ewma;
        block_.code.push_back({op, dst, a, b, c});
        return dst;
      }
    }
    throw ProgramError("internal: unknown expression kind");
  }

  void emit_store_fold(uint16_t reg, uint16_t slot) {
    block_.code.push_back({OpCode::StoreFold, 0, reg, slot, 0});
  }

  CodeBlock take(uint16_t result_slot = 0) {
    block_.n_slots = next_slot_;
    block_.result_slot = result_slot;
    return std::move(block_);
  }

 private:
  uint16_t alloc() {
    if (next_slot_ == std::numeric_limits<uint16_t>::max()) {
      throw ProgramError("expression too large to compile");
    }
    return next_slot_++;
  }

  uint16_t intern_const(double v) {
    for (size_t i = 0; i < block_.consts.size(); ++i) {
      // Bitwise comparison so 0.0 and -0.0 keep distinct entries.
      if (block_.consts[i] == v && std::signbit(block_.consts[i]) == std::signbit(v)) {
        return static_cast<uint16_t>(i);
      }
    }
    block_.consts.push_back(v);
    return static_cast<uint16_t>(block_.consts.size() - 1);
  }

  static OpCode unary_opcode(UnaryOp op) {
    switch (op) {
      case UnaryOp::Neg: return OpCode::Neg;
      case UnaryOp::Not: return OpCode::Not;
      case UnaryOp::Sqrt: return OpCode::Sqrt;
      case UnaryOp::Abs: return OpCode::Abs;
      case UnaryOp::Log: return OpCode::Log;
      case UnaryOp::Exp: return OpCode::Exp;
      case UnaryOp::Cbrt: return OpCode::Cbrt;
    }
    throw ProgramError("internal: unknown unary op");
  }

  static OpCode binary_opcode(BinaryOp op) {
    switch (op) {
      case BinaryOp::Add: return OpCode::Add;
      case BinaryOp::Sub: return OpCode::Sub;
      case BinaryOp::Mul: return OpCode::Mul;
      case BinaryOp::Div: return OpCode::Div;
      case BinaryOp::Pow: return OpCode::Pow;
      case BinaryOp::Min: return OpCode::Min;
      case BinaryOp::Max: return OpCode::Max;
      case BinaryOp::Lt: return OpCode::Lt;
      case BinaryOp::Le: return OpCode::Le;
      case BinaryOp::Gt: return OpCode::Gt;
      case BinaryOp::Ge: return OpCode::Ge;
      case BinaryOp::Eq: return OpCode::Eq;
      case BinaryOp::Ne: return OpCode::Ne;
      case BinaryOp::And: return OpCode::And;
      case BinaryOp::Or: return OpCode::Or;
    }
    throw ProgramError("internal: unknown binary op");
  }

  const ExprArena& arena_;
  CodeBlock block_;
  uint16_t next_slot_ = 0;
};

/// Const-operand superinstruction for `op`, or nullopt if none exists.
std::optional<OpCode> const_form(OpCode op) {
  switch (op) {
    case OpCode::Add: return OpCode::AddC;
    case OpCode::Sub: return OpCode::SubC;
    case OpCode::Mul: return OpCode::MulC;
    case OpCode::Div: return OpCode::DivC;
    case OpCode::Min: return OpCode::MinC;
    case OpCode::Max: return OpCode::MaxC;
    case OpCode::Lt: return OpCode::LtC;
    case OpCode::Le: return OpCode::LeC;
    case OpCode::Gt: return OpCode::GtC;
    case OpCode::Ge: return OpCode::GeC;
    case OpCode::Eq: return OpCode::EqC;
    case OpCode::Ne: return OpCode::NeC;
    default: return std::nullopt;
  }
}

bool is_commutative(OpCode op) {
  return op == OpCode::Add || op == OpCode::Mul || op == OpCode::Min ||
         op == OpCode::Max || op == OpCode::Eq || op == OpCode::Ne;
}

/// `c OP x` rewritten as `x OP' c` for ordered comparisons.
std::optional<OpCode> flipped_comparison(OpCode op) {
  switch (op) {
    case OpCode::Lt: return OpCode::Gt;
    case OpCode::Le: return OpCode::Ge;
    case OpCode::Gt: return OpCode::Lt;
    case OpCode::Ge: return OpCode::Le;
    default: return std::nullopt;
  }
}

/// Slot operands of `in` that the VM reads, appended to `out`.
void read_slots(const Instr& in, uint16_t* out, size_t& n) {
  n = 0;
  switch (in.op) {
    case OpCode::LoadConst:
    case OpCode::LoadFold:
    case OpCode::LoadPkt:
    case OpCode::LoadVar:
      break;
    case OpCode::Neg: case OpCode::Not: case OpCode::Sqrt: case OpCode::Abs:
    case OpCode::Log: case OpCode::Exp: case OpCode::Cbrt:
    case OpCode::AddC: case OpCode::SubC: case OpCode::MulC: case OpCode::DivC:
    case OpCode::MinC: case OpCode::MaxC: case OpCode::LtC: case OpCode::LeC:
    case OpCode::GtC: case OpCode::GeC: case OpCode::EqC: case OpCode::NeC:
      out[n++] = in.a;
      break;
    case OpCode::Add: case OpCode::Sub: case OpCode::Mul: case OpCode::Div:
    case OpCode::Pow: case OpCode::Min: case OpCode::Max:
    case OpCode::Lt: case OpCode::Le: case OpCode::Gt: case OpCode::Ge:
    case OpCode::Eq: case OpCode::Ne: case OpCode::And: case OpCode::Or:
    case OpCode::EwmaC:
      out[n++] = in.a;
      out[n++] = in.b;
      break;
    case OpCode::Select: case OpCode::Ewma: case OpCode::SelGtz:
      out[n++] = in.a;
      out[n++] = in.b;
      out[n++] = in.c;
      break;
    case OpCode::StoreFold:
      out[n++] = in.b;
      break;
  }
}

/// Rewrites the slot operands of `in` through `alias` (same operand
/// classes as read_slots; immediates — pool/field/var/register indices —
/// are left alone).
void rewrite_slots(Instr& in, const std::vector<uint16_t>& alias) {
  switch (in.op) {
    case OpCode::LoadConst:
    case OpCode::LoadFold:
    case OpCode::LoadPkt:
    case OpCode::LoadVar:
      break;
    case OpCode::Neg: case OpCode::Not: case OpCode::Sqrt: case OpCode::Abs:
    case OpCode::Log: case OpCode::Exp: case OpCode::Cbrt:
    case OpCode::AddC: case OpCode::SubC: case OpCode::MulC: case OpCode::DivC:
    case OpCode::MinC: case OpCode::MaxC: case OpCode::LtC: case OpCode::LeC:
    case OpCode::GtC: case OpCode::GeC: case OpCode::EqC: case OpCode::NeC:
      in.a = alias[in.a];
      break;
    case OpCode::Add: case OpCode::Sub: case OpCode::Mul: case OpCode::Div:
    case OpCode::Pow: case OpCode::Min: case OpCode::Max:
    case OpCode::Lt: case OpCode::Le: case OpCode::Gt: case OpCode::Ge:
    case OpCode::Eq: case OpCode::Ne: case OpCode::And: case OpCode::Or:
    case OpCode::EwmaC:
      in.a = alias[in.a];
      in.b = alias[in.b];
      break;
    case OpCode::Select: case OpCode::Ewma: case OpCode::SelGtz:
      in.a = alias[in.a];
      in.b = alias[in.b];
      in.c = alias[in.c];
      break;
    case OpCode::StoreFold:
      in.b = alias[in.b];
      break;
  }
}

}  // namespace

CodeBlock optimize_block(CodeBlock block) {
  if (block.code.empty()) return block;

  // Pass 0 — local value numbering over the pure loads. Fold bodies
  // re-read the same packet field and registers across statements
  // (`Pkt.rtt` alone appears three times in the default program); each
  // repeat becomes an alias of the first load, and a LoadFold after a
  // StoreFold to the same register forwards the stored slot. Operands of
  // later instructions are rewritten through the alias map; the stranded
  // loads fall to DCE below.
  {
    std::vector<uint16_t> alias(block.n_slots);
    for (uint16_t s = 0; s < block.n_slots; ++s) alias[s] = s;
    auto value_number = [&alias](std::vector<int32_t>& map, uint16_t key,
                                 uint16_t dst) {
      if (map.size() <= key) map.resize(key + 1, -1);
      if (map[key] >= 0) {
        alias[dst] = static_cast<uint16_t>(map[key]);
      } else {
        map[key] = dst;
      }
    };
    std::vector<int32_t> const_slot, pkt_slot, var_slot, fold_slot;
    for (Instr& in : block.code) {
      rewrite_slots(in, alias);
      switch (in.op) {
        case OpCode::LoadConst: value_number(const_slot, in.a, in.dst); break;
        case OpCode::LoadPkt: value_number(pkt_slot, in.a, in.dst); break;
        case OpCode::LoadVar: value_number(var_slot, in.a, in.dst); break;
        case OpCode::LoadFold: value_number(fold_slot, in.a, in.dst); break;
        case OpCode::StoreFold:
          // The register now holds exactly slot b's value; later loads of
          // it forward straight to that slot.
          if (fold_slot.size() <= in.a) fold_slot.resize(in.a + 1, -1);
          fold_slot[in.a] = in.b;
          break;
        default: break;
      }
    }
    if (block.result_slot < block.n_slots) {
      block.result_slot = alias[block.result_slot];
    }
  }

  // Slots are SSA within a block (BlockBuilder never reuses one), so a
  // single forward pass sees every definition before its uses.
  constexpr uint32_t kNotConst = 0;
  std::vector<uint32_t> const_of(block.n_slots, kNotConst);  // pool idx + 1
  std::vector<int32_t> def_of(block.n_slots, -1);            // defining instr

  for (size_t i = 0; i < block.code.size(); ++i) {
    Instr& in = block.code[i];
    if (in.op == OpCode::LoadConst) {
      const_of[in.dst] = static_cast<uint32_t>(in.a) + 1;
      def_of[in.dst] = static_cast<int32_t>(i);
      continue;
    }

    // Const-operand fusion for binary ops.
    if (auto fused = const_form(in.op)) {
      const bool a_const = const_of[in.a] != kNotConst;
      const bool b_const = const_of[in.b] != kNotConst;
      if (b_const) {
        in.op = *fused;
        in.b = static_cast<uint16_t>(const_of[in.b] - 1);
      } else if (a_const && is_commutative(in.op)) {
        const uint16_t cidx = static_cast<uint16_t>(const_of[in.a] - 1);
        in.op = *fused;
        in.a = in.b;
        in.b = cidx;
      } else if (a_const) {
        if (auto flipped = flipped_comparison(in.op)) {
          // `c < x` == `x > c`: flip, then fuse the (now right-hand) const.
          const uint16_t const_slot = in.a;
          in.op = *const_form(*flipped);
          in.a = in.b;
          in.b = static_cast<uint16_t>(const_of[const_slot] - 1);
        }
      }
    } else if (in.op == OpCode::Ewma && const_of[in.c] != kNotConst) {
      in.op = OpCode::EwmaC;
      in.c = static_cast<uint16_t>(const_of[in.c] - 1);
    } else if (in.op == OpCode::Select) {
      // `(if (> x 0) b c)` is the idiomatic guard in fold bodies; fuse the
      // compare into the select so the guard costs one instruction.
      const int32_t cond_def = def_of[in.a];
      if (cond_def >= 0) {
        const Instr& d = block.code[static_cast<size_t>(cond_def)];
        if (d.op == OpCode::GtC && block.consts[d.b] == 0.0) {
          in.op = OpCode::SelGtz;
          in.a = d.a;
        }
      }
    }
    if (in.op != OpCode::StoreFold) def_of[in.dst] = static_cast<int32_t>(i);
  }

  // Dead-code elimination by backward liveness. StoreFold side effects and
  // the block result are the roots; fusion above strands the LoadConst and
  // compare instructions it absorbed, and this sweeps them away.
  std::vector<uint8_t> live(block.n_slots, 0);
  if (block.result_slot < block.n_slots) live[block.result_slot] = 1;
  std::vector<uint8_t> keep(block.code.size(), 0);
  for (size_t i = block.code.size(); i-- > 0;) {
    const Instr& in = block.code[i];
    if (in.op != OpCode::StoreFold && !live[in.dst]) continue;
    keep[i] = 1;
    uint16_t reads[3];
    size_t n = 0;
    read_slots(in, reads, n);
    for (size_t r = 0; r < n; ++r) live[reads[r]] = 1;
  }

  std::vector<Instr> out;
  out.reserve(block.code.size());
  for (size_t i = 0; i < block.code.size(); ++i) {
    if (keep[i]) out.push_back(block.code[i]);
  }
  block.code = std::move(out);
  return block;
}

CompiledProgram compile(const Program& prog) {
  check_or_throw(prog);

  CompiledProgram out;
  for (const auto& reg : prog.folds) {
    out.fold_names.push_back(reg.name);
    out.volatile_regs.push_back(reg.is_volatile);
    out.urgent_regs.push_back(reg.urgent);
    if (reg.urgent) {
      out.urgent_indices.push_back(
          static_cast<uint16_t>(out.fold_names.size() - 1));
    }
  }
  out.var_names = prog.vars;

  {
    BlockBuilder b(prog.arena);
    uint16_t last = 0;
    for (size_t i = 0; i < prog.folds.size(); ++i) {
      last = b.emit_expr(prog.folds[i].init);
      b.emit_store_fold(static_cast<uint16_t>(i), last);
    }
    // Statement blocks have no caller-visible result; point result_slot
    // at the last stored value so dead-code elimination doesn't keep an
    // arbitrary slot-0 definition alive.
    out.init_block = optimize_block(b.take(last));
  }
  {
    BlockBuilder b(prog.arena);
    uint16_t last = 0;
    for (size_t i = 0; i < prog.folds.size(); ++i) {
      // Store immediately so later updates observe the new value
      // (sequential fold semantics; see parser.hpp).
      last = b.emit_expr(prog.folds[i].update);
      b.emit_store_fold(static_cast<uint16_t>(i), last);
    }
    out.fold_block = optimize_block(b.take(last));
  }
  for (const auto& instr : prog.control) {
    out.control_ops.push_back(instr.op);
    if (instr.arg == kInvalidExpr) {
      out.control_args.emplace_back();
      continue;
    }
    BlockBuilder b(prog.arena);
    const uint16_t slot = b.emit_expr(instr.arg);
    out.control_args.push_back(optimize_block(b.take(slot)));
  }

  // Record which packet fields survive optimization, so the datapath can
  // skip computing measurements the program never reads.
  auto scan_fields = [&out](const CodeBlock& block) {
    for (const Instr& in : block.code) {
      if (in.op == OpCode::LoadPkt) out.pkt_fields_used |= 1u << in.a;
    }
  };
  scan_fields(out.init_block);
  scan_fields(out.fold_block);
  for (const auto& block : out.control_args) scan_fields(block);
  return out;
}

CompiledProgram compile_text(std::string_view src) {
  return compile(parse_program(src));
}

namespace {

// compile_text_shared's bounded LRU cache. Keyed by exact program text:
// an agent installs a handful of distinct programs across millions of
// flows, so the steady state stays tiny while every flow (on any shard)
// shares one immutable compiled copy. The bound matters under algorithm
// churn (e.g. a tuner emitting a new parameterized program text per
// epoch): without it the map — and every JIT code region hanging off the
// cached programs — grows forever. Eviction drops only the cache's
// reference; flows holding the shared_ptr keep their program alive.
//
// The list owns the entries (front = most recently used); the index maps
// string_views into the list nodes' keys, which are stable across
// splices.
struct ProgramCacheEntry {
  std::string key;
  std::shared_ptr<const CompiledProgram> prog;
};

std::mutex g_prog_cache_mu;
std::list<ProgramCacheEntry>& prog_cache_list() {
  static auto* l = new std::list<ProgramCacheEntry>();
  return *l;
}
using ProgramCacheIndex =
    std::map<std::string_view, std::list<ProgramCacheEntry>::iterator, std::less<>>;
ProgramCacheIndex& prog_cache_index() {
  static auto* m = new ProgramCacheIndex();
  return *m;
}
size_t g_prog_cache_cap = kDefaultProgramCacheCapacity;

/// Evicts LRU entries until size <= cap. Caller holds g_prog_cache_mu.
void prog_cache_trim() {
  auto& list = prog_cache_list();
  auto& index = prog_cache_index();
  while (list.size() > g_prog_cache_cap) {
    index.erase(list.back().key);
    list.pop_back();
    if (telemetry::enabled()) {
      telemetry::metrics().lang_cache_evictions.inc();
    }
  }
  telemetry::metrics().lang_cache_programs.set(
      static_cast<int64_t>(list.size()));
}

}  // namespace

std::shared_ptr<const CompiledProgram> compile_text_shared(std::string_view src) {
  {
    std::lock_guard<std::mutex> lock(g_prog_cache_mu);
    auto& index = prog_cache_index();
    auto it = index.find(src);
    if (it != index.end()) {
      auto& list = prog_cache_list();
      list.splice(list.begin(), list, it->second);  // mark most recent
      return it->second->prog;
    }
  }
  // Compile outside the lock: a malformed program throws without
  // poisoning the cache, and a slow compile doesn't serialize unrelated
  // installs. A racing duplicate compile is harmless — first insert wins.
  auto compiled = std::make_shared<const CompiledProgram>(compile_text(src));
  std::lock_guard<std::mutex> lock(g_prog_cache_mu);
  auto& index = prog_cache_index();
  if (auto it = index.find(src); it != index.end()) {
    auto& list = prog_cache_list();
    list.splice(list.begin(), list, it->second);
    return it->second->prog;
  }
  if (g_prog_cache_cap == 0) return compiled;  // caching disabled
  auto& list = prog_cache_list();
  list.push_front(ProgramCacheEntry{std::string(src), std::move(compiled)});
  index.emplace(list.front().key, list.begin());
  prog_cache_trim();
  return list.front().prog;
}

void set_program_cache_capacity(size_t cap) {
  std::lock_guard<std::mutex> lock(g_prog_cache_mu);
  g_prog_cache_cap = cap;
  prog_cache_trim();
}

size_t program_cache_capacity() {
  std::lock_guard<std::mutex> lock(g_prog_cache_mu);
  return g_prog_cache_cap;
}

size_t program_cache_size() {
  std::lock_guard<std::mutex> lock(g_prog_cache_mu);
  return prog_cache_list().size();
}

void clear_program_cache() {
  std::lock_guard<std::mutex> lock(g_prog_cache_mu);
  prog_cache_index().clear();
  prog_cache_list().clear();
  telemetry::metrics().lang_cache_programs.set(0);
}

std::vector<double> bind_vars(const CompiledProgram& prog,
                              const std::vector<std::string>& names,
                              const std::vector<double>& values) {
  std::vector<double> out(prog.num_vars(), 0.0);
  for (size_t i = 0; i < names.size() && i < values.size(); ++i) {
    const int idx = prog.var_index(names[i]);
    if (idx < 0) {
      throw ProgramError("install: program has no variable $" + names[i]);
    }
    out[static_cast<size_t>(idx)] = values[i];
  }
  for (const auto& name : prog.var_names) {
    const bool bound =
        std::find(names.begin(), names.end(), name) != names.end();
    if (!bound) {
      throw ProgramError("install: variable $" + name + " left unbound");
    }
  }
  return out;
}

}  // namespace ccp::lang
