// Recursive-descent parser for datapath programs.
//
// Grammar (fold and control blocks may appear in either order; at most
// one of each):
//
//   program   := block*
//   block     := 'fold' '{' decl* '}' | 'control' '{' instr* '}'
//   decl      := ['volatile'] IDENT ':=' expr 'init' expr ['urgent'] ';'
//   instr     := ('Rate'|'Cwnd'|'Wait'|'WaitRtts') '(' expr ')' ';'
//              | 'Report' '(' ')' ';'
//   expr      := or-chain with C-style precedence; primaries are numbers,
//                $vars, Pkt.<field>, fold-register names, calls
//                (min, max, abs, sqrt, cbrt, pow, log, exp, ewma, if),
//                and parenthesized expressions.
//
// Fold registers may reference each other, including forward references;
// updates are applied *sequentially* in declaration order, and an update
// reads the already-updated values of registers declared before it (this
// matches the paper's §2.4 Vegas fold, where inQ uses new.baseRtt).
#pragma once

#include <string_view>

#include "lang/ast.hpp"

namespace ccp::lang {

/// Parses program text into an AST. Throws ProgramError with position
/// info on any syntax error. Name resolution errors (unknown register)
/// are also reported here.
Program parse_program(std::string_view src);

}  // namespace ccp::lang
