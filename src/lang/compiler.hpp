// Lowers a checked AST into executable bytecode.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/bytecode.hpp"

namespace ccp::lang {

namespace jit {
struct Handle;  // lang/jit/jit.hpp — owns one program's native code
}

/// Everything the datapath needs to run one installed program.
struct CompiledProgram {
  /// Evaluates every register's init expression and stores it.
  /// Packet fields read as zero during init.
  CodeBlock init_block;

  /// Runs once per ACK: evaluates updates in declaration order, storing
  /// each result immediately (sequential fold semantics, §2.4).
  CodeBlock fold_block;

  /// One compiled expression per control instruction argument
  /// (index-aligned with `control`; Report entries are empty blocks).
  std::vector<CodeBlock> control_args;
  std::vector<ControlInstr::Op> control_ops;

  /// Register metadata, index-aligned with the fold state vector.
  std::vector<std::string> fold_names;
  std::vector<bool> volatile_regs;
  std::vector<bool> urgent_regs;

  /// Indices of urgent registers (the true entries of `urgent_regs`),
  /// precomputed so the per-ACK urgency check snapshots and compares only
  /// these registers instead of the whole register file.
  std::vector<uint16_t> urgent_indices;

  /// Bit `f` is set iff any block (after optimization) reads packet
  /// field `f` via LoadPkt. The datapath uses this to skip computing
  /// expensive measurements (e.g. windowed rate estimates) the installed
  /// program never looks at.
  uint32_t pkt_fields_used = 0;

  /// Install-time variable names; the agent binds these in Install().
  std::vector<std::string> var_names;

  /// Native compilation of fold_block, attached lazily by
  /// jit::get_or_compile (mutable: the program stays logically immutable;
  /// this is a cache). Shared by every flow and shard running this
  /// program, and destroyed with the last shared_ptr to it — so evicting
  /// the program from the compile cache frees its machine code only once
  /// no flow still holds the program. A handle with no entry point
  /// latches an emit failure (interpreter fallback, no recompile storms).
  /// All access goes through the JIT's global compile mutex.
  mutable std::shared_ptr<const jit::Handle> jit_handle;

  size_t num_folds() const { return fold_names.size(); }
  size_t num_vars() const { return var_names.size(); }
  bool reads_pkt_field(PktField f) const {
    return (pkt_fields_used >> static_cast<unsigned>(f)) & 1u;
  }
  bool has_urgent() const {
    for (bool u : urgent_regs) if (u) return true;
    return false;
  }
  int fold_index(std::string_view name) const {
    for (size_t i = 0; i < fold_names.size(); ++i) {
      if (fold_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  int var_index(std::string_view name) const {
    for (size_t i = 0; i < var_names.size(); ++i) {
      if (var_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Install-time peephole optimizer, run by compile() on every block:
///  1. fuses LoadConst feeding a binary op into a const-operand
///     superinstruction (AddC, MulC, GtC, ... EwmaC), swapping operands
///     for commutative ops and flipping comparisons when the constant is
///     on the left;
///  2. fuses a Select whose condition is `x > 0` into SelGtz;
///  3. removes dead instructions by backward liveness (StoreFold and the
///     result slot are the roots).
/// Exposed for tests; slot numbering and the constant pool are preserved.
CodeBlock optimize_block(CodeBlock block);

/// Compiles a parsed program. Runs semantic analysis first and throws
/// ProgramError on any error-severity issue.
CompiledProgram compile(const Program& prog);

/// Convenience: parse + check + compile program text.
CompiledProgram compile_text(std::string_view src);

/// Compile-once cache: returns a shared immutable program for `src`,
/// compiling only on first sight of this exact text. Thread-safe — this
/// is how per-shard VM instances share one compiled program (the
/// FoldMachine keeps per-flow state; CompiledProgram is read-only after
/// construction). Throws ProgramError on a malformed program.
///
/// The cache is a bounded LRU (default capacity
/// kDefaultProgramCacheCapacity): under algorithm churn the
/// least-recently-installed program text is evicted (counted in
/// ccp_lang_cache_evictions_total). Eviction only drops the cache's
/// reference — flows still running the program keep it (and its JIT
/// code) alive through their own shared_ptr.
std::shared_ptr<const CompiledProgram> compile_text_shared(std::string_view src);

inline constexpr size_t kDefaultProgramCacheCapacity = 64;

/// Caps the compile_text_shared cache, evicting LRU entries if the new
/// cap is below the current size. A cap of 0 disables caching entirely
/// (every call compiles). Thread-safe.
void set_program_cache_capacity(size_t cap);
size_t program_cache_capacity();

/// Programs currently resident in the compile_text_shared cache.
size_t program_cache_size();

/// Drops every cached program (tests; live flows are unaffected).
void clear_program_cache();

/// Binds install-time variables by name into the positional vector the
/// FoldMachine consumes. Throws ProgramError on an unknown or unbound
/// variable (same contract the per-flow install path always had).
std::vector<double> bind_vars(const CompiledProgram& prog,
                              const std::vector<std::string>& names,
                              const std::vector<double>& values);

}  // namespace ccp::lang
