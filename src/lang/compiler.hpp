// Lowers a checked AST into executable bytecode.
#pragma once

#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/bytecode.hpp"

namespace ccp::lang {

/// Everything the datapath needs to run one installed program.
struct CompiledProgram {
  /// Evaluates every register's init expression and stores it.
  /// Packet fields read as zero during init.
  CodeBlock init_block;

  /// Runs once per ACK: evaluates updates in declaration order, storing
  /// each result immediately (sequential fold semantics, §2.4).
  CodeBlock fold_block;

  /// One compiled expression per control instruction argument
  /// (index-aligned with `control`; Report entries are empty blocks).
  std::vector<CodeBlock> control_args;
  std::vector<ControlInstr::Op> control_ops;

  /// Register metadata, index-aligned with the fold state vector.
  std::vector<std::string> fold_names;
  std::vector<bool> volatile_regs;
  std::vector<bool> urgent_regs;

  /// Install-time variable names; the agent binds these in Install().
  std::vector<std::string> var_names;

  size_t num_folds() const { return fold_names.size(); }
  size_t num_vars() const { return var_names.size(); }
  bool has_urgent() const {
    for (bool u : urgent_regs) if (u) return true;
    return false;
  }
  int fold_index(std::string_view name) const {
    for (size_t i = 0; i < fold_names.size(); ++i) {
      if (fold_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  int var_index(std::string_view name) const {
    for (size_t i = 0; i < var_names.size(); ++i) {
      if (var_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Compiles a parsed program. Runs semantic analysis first and throws
/// ProgramError on any error-severity issue.
CompiledProgram compile(const Program& prog);

/// Convenience: parse + check + compile program text.
CompiledProgram compile_text(std::string_view src);

}  // namespace ccp::lang
