// Quantile computation for benchmark reporting.
//
// `SampleSet` stores every sample and computes exact quantiles — right for
// the Figure 2 reproduction (60k IPC latency samples, CDF output).
// `P2Quantile` is the constant-memory P² estimator for long-running
// online use inside the datapath.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace ccp {

/// Exact quantiles over an in-memory sample set.
class SampleSet {
 public:
  void add(double sample);
  void reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Quantile by linear interpolation between closest ranks; q in [0,1].
  double quantile(double q) const;

  /// Evenly spaced CDF points: returns {value at q} for q = 1/n, 2/n, ... 1.
  std::vector<double> cdf(size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// P² (Jain & Chlamtac 1985) online quantile estimator: tracks one
/// quantile with five markers and no stored samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double sample);
  /// Current estimate. Exact while fewer than 5 samples have been seen.
  double value() const;
  size_t count() const { return count_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, int d) const;

  double q_;
  size_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace ccp
