// Exponentially-weighted moving average, the workhorse filter of
// congestion control (SRTT, rate smoothing, DCTCP's alpha, ...).
#pragma once

namespace ccp {

/// EWMA with gain `g`: value <- (1-g)*value + g*sample.
/// The first sample initializes the average exactly (no bias toward zero).
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
      return;
    }
    value_ += gain_ * (sample - value_);
  }

  /// Resets to the uninitialized state; the next sample sets the value.
  void reset() { initialized_ = false; value_ = 0.0; }

  /// Force a value (used when restoring state from a report).
  void set(double v) { value_ = v; initialized_ = true; }

  double value() const { return value_; }
  double gain() const { return gain_; }
  bool initialized() const { return initialized_; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace ccp
