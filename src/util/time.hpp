// Time types shared by the simulator, datapath, and IPC layers.
//
// All simulated time is kept in integer nanoseconds to make event ordering
// exact and runs reproducible. `Duration` and `TimePoint` are thin strong
// types over int64 nanoseconds; mixing them up is a compile error.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace ccp {

/// A span of time, in integer nanoseconds. Negative durations are allowed
/// as intermediate values (e.g. deadline - now) but never scheduled.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration from_nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration from_micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration from_millis(int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration from_secs(int64_t s) { return Duration(s * 1'000'000'000); }
  static constexpr Duration from_secs_f(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1'000'000; }
  constexpr double secs() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

/// An instant on the simulation (or monotonic real-time) clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint epoch() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double secs() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.nanos()); }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::from_nanos(ns_ - o.ns_);
  }
  TimePoint& operator+=(Duration d) { ns_ += d.nanos(); return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

/// Monotonic wall-clock now, for the real (non-simulated) IPC benchmarks.
inline TimePoint monotonic_now() {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
  return TimePoint::from_nanos(ns);
}

}  // namespace ccp
