#include "util/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccp {

void SampleSet::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

std::vector<double> SampleSet::cdf(size_t points) const {
  std::vector<double> out;
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    out.push_back(quantile(static_cast<double>(i) / static_cast<double>(points)));
  }
  return out;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q <= 0.0 || q >= 1.0) throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

void P2Quantile::add(double sample) {
  if (count_ < 5) {
    heights_[count_++] = sample;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  int k;
  if (sample < heights_[0]) {
    heights_[0] = sample;
    k = 0;
  } else if (sample >= heights_[4]) {
    heights_[4] = sample;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && sample >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, static_cast<int>(sign));
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::parabolic(int i, double d) const {
  const auto& n = positions_;
  const auto& h = heights_;
  return h[i] + d / (n[i + 1] - n[i - 1]) *
                    ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i]) +
                     (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]));
}

double P2Quantile::linear(int i, int d) const {
  return heights_[i] + static_cast<double>(d) * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile.
    std::array<double, 5> tmp{};
    std::copy(heights_.begin(), heights_.begin() + count_, tmp.begin());
    std::sort(tmp.begin(), tmp.begin() + count_);
    const double rank = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, count_ - 1);
    return tmp[lo] + (rank - static_cast<double>(lo)) * (tmp[hi] - tmp[lo]);
  }
  return heights_[2];
}

}  // namespace ccp
