// Time-windowed min/max filter, after the Kathleen Nichols design used by
// BBR and the Linux kernel (lib/win_minmax.c): tracks the best (min or
// max) sample over a sliding time window using three estimates, in O(1)
// per update and O(1) memory.
#pragma once

#include <array>

#include "util/time.hpp"

namespace ccp {

/// Compare tells the filter which direction is "best": Min keeps the
/// smallest sample in the window, Max the largest.
enum class FilterKind { Min, Max };

template <typename T>
class WindowedFilter {
 public:
  WindowedFilter(FilterKind kind, Duration window) : kind_(kind), window_(window) {}

  /// Record `sample` observed at `now`; returns the current best estimate.
  T update(T sample, TimePoint now) {
    if (!initialized_ || better(sample, estimates_[0].value) ||
        now - estimates_[2].time > window_) {
      reset(sample, now);
      return estimates_[0].value;
    }
    if (better(sample, estimates_[1].value)) {
      estimates_[1] = {sample, now};
      estimates_[2] = estimates_[1];
    } else if (better(sample, estimates_[2].value)) {
      estimates_[2] = {sample, now};
    }
    // Expire the front estimate if it has aged out of the window.
    if (now - estimates_[0].time > window_) {
      estimates_[0] = estimates_[1];
      estimates_[1] = estimates_[2];
      estimates_[2] = {sample, now};
      if (now - estimates_[0].time > window_) {
        estimates_[0] = estimates_[1];
        estimates_[1] = estimates_[2];
      }
    } else if (estimates_[1].time == estimates_[0].time &&
               now - estimates_[1].time > window_ / 4) {
      // Passed a quarter of the window without a better sample: refresh
      // the 2nd choice so the filter keeps adapting.
      estimates_[1] = {sample, now};
      estimates_[2] = estimates_[1];
    } else if (estimates_[2].time == estimates_[1].time &&
               now - estimates_[2].time > window_ / 2) {
      estimates_[2] = {sample, now};
    }
    return estimates_[0].value;
  }

  /// Best estimate currently in the window. Undefined before first update.
  T get() const { return estimates_[0].value; }
  bool initialized() const { return initialized_; }

  void reset(T sample, TimePoint now) {
    estimates_.fill({sample, now});
    initialized_ = true;
  }

 private:
  struct Estimate {
    T value{};
    TimePoint time{};
  };

  bool better(T candidate, T incumbent) const {
    return kind_ == FilterKind::Min ? candidate < incumbent : candidate > incumbent;
  }

  FilterKind kind_;
  Duration window_;
  std::array<Estimate, 3> estimates_{};
  bool initialized_ = false;
};

}  // namespace ccp
