// Parsing and formatting of human-friendly units used throughout the
// benches and examples: "10Gbps", "1500B", "10ms", "1.5s".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace ccp {

/// Parses a bandwidth like "10Gbps", "250Mbit", "1e9bps" into bits/sec.
/// Throws std::invalid_argument on malformed input.
double parse_bandwidth_bps(std::string_view text);

/// Parses a duration like "10ms", "48us", "2s", "100ns".
Duration parse_duration(std::string_view text);

/// Parses a byte size like "1500B", "64KB", "1MB" (powers of 10 for K/M/G).
uint64_t parse_bytes(std::string_view text);

/// "9.41 Gbit/s", "250.0 Mbit/s", ... chooses the natural prefix.
std::string format_bandwidth(double bits_per_sec);

/// "48.0 us", "10.0 ms", ...
std::string format_duration(Duration d);

/// "1.50 KB", "9.20 MB", ...
std::string format_bytes(double bytes);

}  // namespace ccp
