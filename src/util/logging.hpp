// Minimal leveled logger. Off by default so benchmarks stay quiet;
// examples and debugging turn it up via set_log_level or CCP_LOG env var.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace ccp {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Reads CCP_LOG (trace/debug/info/warn/error/off) once at startup.
void init_logging_from_env();

/// Receives every emitted log record instead of the default stderr
/// writer. `msg` is only valid for the duration of the call.
using LogSink =
    std::function<void(LogLevel level, const char* file, int line,
                       std::string_view msg)>;

/// Replaces the stderr writer with `sink`; pass nullptr to restore the
/// default. Tests use this to assert on warnings (e.g. shm ring-full,
/// frame decode errors) instead of scraping stderr.
void set_log_sink(LogSink sink);

namespace detail {
void log_line(LogLevel level, const char* file, int line, const std::string& msg);
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define CCP_LOG(level, ...)                                                     \
  do {                                                                          \
    if (static_cast<int>(level) >= static_cast<int>(::ccp::log_level())) {      \
      ::ccp::detail::log_line(level, __FILE__, __LINE__,                        \
                              ::ccp::detail::format_log(__VA_ARGS__));          \
    }                                                                           \
  } while (0)

#define CCP_TRACE(...) CCP_LOG(::ccp::LogLevel::Trace, __VA_ARGS__)
#define CCP_DEBUG(...) CCP_LOG(::ccp::LogLevel::Debug, __VA_ARGS__)
#define CCP_INFO(...) CCP_LOG(::ccp::LogLevel::Info, __VA_ARGS__)
#define CCP_WARN(...) CCP_LOG(::ccp::LogLevel::Warn, __VA_ARGS__)
#define CCP_ERROR(...) CCP_LOG(::ccp::LogLevel::Error, __VA_ARGS__)

}  // namespace ccp
