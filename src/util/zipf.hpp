// Zipf(s) sampler over {1..n} by rejection-inversion (Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions", ACM TOMACS 1996) — the same scheme Apache
// Commons' RejectionInversionZipfSampler uses.
//
// The churn benchmark drives a million-flow table with Zipf-popular flow
// ids (front-end connection popularity is heavy-tailed: a handful of
// elephants, a vast cold tail), so the sampler must be O(1) per draw
// with no O(n) setup table — a 1M-entry alias table would itself perturb
// the cache behavior the benchmark measures. Rejection-inversion needs
// only a few precomputed doubles and ~1 uniform per draw for s > 1.
//
// Deterministic: draws come from ccp::Rng (xoshiro256++) and use only
// arithmetic with defined cross-platform behavior.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace ccp::util {

class ZipfSampler {
 public:
  /// P(k) proportional to 1/k^s over k in {1..n}. Requires n >= 1 and
  /// s > 0 (s != 1 is not required; the helpers handle the limit).
  ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
    h_integral_x1_ = h_integral(1.5) - 1.0;
    h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
    dd_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  uint64_t operator()(Rng& rng) {
    while (true) {
      // u uniform in (h_integral_x1_, h_integral_n_]
      const double u =
          h_integral_n_ +
          rng.next_double() * (h_integral_x1_ - h_integral_n_);
      const double x = h_integral_inverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      // Acceptance: either x landed close enough to k that acceptance is
      // certain (the precomputed dd_ bound), or the exact hat test passes.
      if (static_cast<double>(k) - x <= dd_ ||
          u >= h_integral(static_cast<double>(k) + 0.5) -
                   h(static_cast<double>(k))) {
        return k;
      }
    }
  }

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  // h(x) = 1/x^s, the (unnormalized) density; h_integral its
  // antiderivative, written via helper functions that stay accurate as
  // their arguments approach 0 (and exact at s == 1).
  double h(double x) const { return std::exp(-s_ * std::log(x)); }

  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - s_) * log_x) * log_x;
  }

  double h_integral_inverse(double u) const {
    double t = u * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // guard against round-off below the pole
    return std::exp(helper1(t) * u);
  }

  /// log1p(x)/x, continuous at 0 (Taylor fallback near 0).
  static double helper1(double x) {
    if (std::abs(x) > 1e-8) return std::log1p(x) / x;
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
  }

  /// expm1(x)/x, continuous at 0 (Taylor fallback near 0).
  static double helper2(double x) {
    if (std::abs(x) > 1e-8) return std::expm1(x) / x;
    return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
  }

  uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double dd_;
};

}  // namespace ccp::util
