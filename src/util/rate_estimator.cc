#include "util/rate_estimator.hpp"

namespace ccp {

RateEstimator::RateEstimator(Duration window) : window_(window) {
  events_.resize(kCapacity);
}

void RateEstimator::expire(TimePoint now) const {
  const TimePoint cutoff = now - window_;
  while (count() > 0 && front().time < cutoff) pop_front_into_anchor();
}

double RateEstimator::rate_bps(TimePoint now) const {
  expire(now);
  if (count() == 0) return 0.0;
  if (anchor_valid_) {
    // The window has been rolling: measure everything in it against the
    // window edge (or the last expired event, whichever is later). A
    // burst after a quiet gap is thus averaged over the gap — the bytes
    // really were delivered across that whole period — instead of being
    // divided by the burst's own microseconds.
    const TimePoint window_edge = now - window_;
    const TimePoint anchor =
        anchor_time_ > window_edge ? anchor_time_ : window_edge;
    const Duration span = now - anchor;
    if (span <= Duration::zero()) return 0.0;
    return static_cast<double>(bytes_in_window_) / span.secs();
  }
  // Startup (nothing expired yet): measure from the first event, whose
  // own bytes arrived "at time zero" of the interval and are excluded.
  if (count() < 2) return 0.0;
  const Duration span = now - front().time;
  if (span <= Duration::zero()) return 0.0;
  const uint64_t bytes = bytes_in_window_ - front().bytes;
  return static_cast<double>(bytes) / span.secs();
}

void RateEstimator::reset() {
  head_ = tail_ = 0;
  bytes_in_window_ = 0;
  anchor_valid_ = false;
  cache_rate_ = 0.0;
  cache_until_ = TimePoint{};
}

}  // namespace ccp
