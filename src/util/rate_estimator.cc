#include "util/rate_estimator.hpp"

#include <bit>

namespace ccp {

size_t RateEstimator::round_capacity(size_t capacity) {
  return std::bit_ceil(capacity < 8 ? size_t{8} : capacity);
}

RateEstimator::RateEstimator(Duration window, size_t capacity)
    : window_(window), capacity_(round_capacity(capacity)) {
  events_.resize(capacity_);
}

void RateEstimator::reinit(Duration window, size_t capacity) {
  window_ = window;
  const size_t cap = round_capacity(capacity);
  if (cap != capacity_) {
    capacity_ = cap;
    events_.resize(cap);
    events_.shrink_to_fit();
  }
  reset();
  total_bytes_ = 0;
}

void RateEstimator::expire(TimePoint now) const {
  const TimePoint cutoff = now - window_;
  if (count() == 0) return;
  // Long-idle fast path: if even the newest event predates the window,
  // the whole ring expires at once. Walking the ring here is what a
  // Zipf-tail flow at million-flow scale would pay on every visit — its
  // cache TTL and its history are both long gone by the time it is
  // ACKed again — so the O(ring) walk collapses to the same state the
  // pops would reach: anchor at the newest event, empty window.
  const Event& newest = events_[(tail_ - 1) & (capacity_ - 1)];
  if (newest.time < cutoff) {
    anchor_time_ = newest.time;
    anchor_valid_ = true;
    bytes_in_window_ = 0;
    head_ = tail_;
    return;
  }
  while (count() > 0 && front().time < cutoff) pop_front_into_anchor();
}

double RateEstimator::rate_bps(TimePoint now) const {
  expire(now);
  if (count() == 0) return 0.0;
  if (anchor_valid_) {
    // The window has been rolling: measure everything in it against the
    // window edge (or the last expired event, whichever is later). A
    // burst after a quiet gap is thus averaged over the gap — the bytes
    // really were delivered across that whole period — instead of being
    // divided by the burst's own microseconds.
    const TimePoint window_edge = now - window_;
    const TimePoint anchor =
        anchor_time_ > window_edge ? anchor_time_ : window_edge;
    const Duration span = now - anchor;
    if (span <= Duration::zero()) return 0.0;
    return static_cast<double>(bytes_in_window_) / span.secs();
  }
  // Startup (nothing expired yet): measure from the first event, whose
  // own bytes arrived "at time zero" of the interval and are excluded.
  if (count() < 2) return 0.0;
  const Duration span = now - front().time;
  if (span <= Duration::zero()) return 0.0;
  const uint64_t bytes = bytes_in_window_ - front().bytes;
  return static_cast<double>(bytes) / span.secs();
}

void RateEstimator::reset() {
  head_ = tail_ = 0;
  bytes_in_window_ = 0;
  anchor_valid_ = false;
  cache_rate_ = 0.0;
  cache_until_ = TimePoint{};
}

}  // namespace ccp
