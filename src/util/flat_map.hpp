// Open-addressing hash map for hot-path lookup tables (flow demux).
//
// std::map costs a pointer-chasing red-black tree walk per lookup; on the
// per-ACK demux path that is several dependent cache misses per packet.
// FlatMap stores Slots contiguously with linear probing and a Fibonacci
// hash finalizer, so the common lookup is one probe into one cache line.
//
// Deliberately minimal: exactly what the flow tables need.
//   - find() -> V* (nullptr when absent)
//   - insert_or_assign(), erase(), size(), clear()
//   - range-for iteration over occupied Slots; Slot exposes public
//     members `key`/`value` so structured bindings written against
//     std::map's pair iteration (`for (auto& [id, flow] : map)`) keep
//     compiling unchanged.
//
// Invariants: capacity is a power of two; load factor <= 0.75; erase uses
// backward-shift deletion (no tombstones, probe chains stay short).
// Iteration order is unspecified (it is NOT sorted like std::map).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ccp::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  struct Slot {
    K key{};
    V value{};
  };

  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    used_.clear();
    size_ = 0;
  }

  V* find(const K& key) {
    if (size_ == 0) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t i = index_of(key);
    while (used_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Inserts or overwrites. Returns a reference to the stored value.
  /// References are invalidated by any insert that triggers a rehash.
  template <typename U>
  V& insert_or_assign(const K& key, U&& value) {
    reserve_for_one_more();
    const size_t mask = slots_.size() - 1;
    size_t i = index_of(key);
    while (used_[i]) {
      if (slots_[i].key == key) {
        slots_[i].value = std::forward<U>(value);
        return slots_[i].value;
      }
      i = (i + 1) & mask;
    }
    used_[i] = true;
    slots_[i].key = key;
    slots_[i].value = std::forward<U>(value);
    ++size_;
    return slots_[i].value;
  }

  /// Removes `key` if present; returns the number of elements removed
  /// (0 or 1, matching std::map::erase).
  size_t erase(const K& key) {
    if (size_ == 0) return 0;
    const size_t mask = slots_.size() - 1;
    size_t i = index_of(key);
    while (used_[i]) {
      if (slots_[i].key == key) break;
      i = (i + 1) & mask;
    }
    if (!used_[i]) return 0;

    // Backward-shift deletion: walk the probe chain after the hole and
    // move back every element whose home position does not lie strictly
    // between the hole and its current slot (cyclically).
    size_t hole = i;
    size_t j = (hole + 1) & mask;
    while (used_[j]) {
      const size_t home = index_of(slots_[j].key);
      // Distance from home to current slot >= distance from hole to
      // current slot means the element may legally move into the hole.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask;
    }
    used_[hole] = false;
    slots_[hole] = Slot{};
    --size_;
    return 1;
  }

  // --- iteration over occupied slots ---

  template <bool Const>
  class Iter {
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using SlotT = std::conditional_t<Const, const Slot, Slot>;

   public:
    Iter(MapT* map, size_t pos) : map_(map), pos_(pos) { skip_empty(); }
    SlotT& operator*() const { return map_->slots_[pos_]; }
    SlotT* operator->() const { return &map_->slots_[pos_]; }
    Iter& operator++() {
      ++pos_;
      skip_empty();
      return *this;
    }
    bool operator==(const Iter& o) const { return pos_ == o.pos_; }
    bool operator!=(const Iter& o) const { return pos_ != o.pos_; }

   private:
    void skip_empty() {
      while (pos_ < map_->slots_.size() && !map_->used_[pos_]) ++pos_;
    }
    MapT* map_;
    size_t pos_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

 private:
  size_t index_of(const K& key) const {
    // Fibonacci finalizer spreads clustered keys (flow ids are
    // sequential integers whose std::hash is the identity).
    const uint64_t h = static_cast<uint64_t>(Hash{}(key)) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> shift_);
  }

  void reserve_for_one_more() {
    if (slots_.empty()) {
      rehash(16);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 0.75
      rehash(slots_.size() * 2);
    }
  }

  void rehash(size_t new_cap) {
    std::vector<Slot> old_slots;
    std::vector<uint8_t> old_used;
    old_slots.swap(slots_);
    old_used.swap(used_);
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    shift_ = 64;
    for (size_t c = new_cap; c > 1; c >>= 1) --shift_;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      const size_t mask = slots_.size() - 1;
      size_t j = index_of(old_slots[i].key);
      while (used_[j]) j = (j + 1) & mask;
      used_[j] = true;
      slots_[j] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> used_;  // parallel occupancy bitmap (byte per slot)
  size_t size_ = 0;
  unsigned shift_ = 64;  // 64 - log2(capacity)
};

}  // namespace ccp::util
