#include "util/rng.hpp"

#include <cmath>

namespace ccp {
namespace {

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  // Avoid log(0); next_double() is in [0,1) so 1-u is in (0,1].
  return -mean * std::log(1.0 - next_double());
}

double Rng::gaussian(double mean, double stddev) {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double k = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * k;
  have_spare_gaussian_ = true;
  return mean + stddev * u * k;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace ccp
