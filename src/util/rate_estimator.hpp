// Sliding-window rate estimation for sending and delivery rates.
//
// The paper's datapath primitive (3) requires "statistics on ... packet
// delivery rates". This estimator counts bytes over a sliding time window
// and reports bytes/sec; it is the source of Pkt.snd_rate / Pkt.rcv_rate
// presented to fold functions.
#pragma once

#include <cstdint>
#include <deque>

#include "util/time.hpp"

namespace ccp {

class RateEstimator {
 public:
  /// `window`: how much history contributes to the estimate. Congestion
  /// control wants roughly an RTT; callers may retune via set_window().
  explicit RateEstimator(Duration window = Duration::from_millis(100));

  void set_window(Duration window);
  Duration window() const { return window_; }

  /// Record that `bytes` were sent/delivered at `now`.
  void on_bytes(uint64_t bytes, TimePoint now);

  /// Estimated rate in bytes per second over the trailing window.
  /// Returns 0 until at least two events span a measurable interval.
  double rate_bps(TimePoint now) const;

  /// Total bytes recorded since construction (monotone counter).
  uint64_t total_bytes() const { return total_bytes_; }

  void reset();

 private:
  struct Event {
    TimePoint time;
    uint64_t bytes;
  };

  void expire(TimePoint now) const;

  Duration window_;
  // mutable: expire() trims history from const accessors.
  mutable std::deque<Event> events_;
  mutable uint64_t bytes_in_window_ = 0;
  // Time of the most recently expired event: once events start aging
  // out, the measurement interval is anchored at the window edge, so an
  // ACK burst after a quiet gap is averaged over the gap rather than
  // over the burst's own microseconds.
  mutable TimePoint anchor_time_{};
  mutable bool anchor_valid_ = false;
  uint64_t total_bytes_ = 0;
};

}  // namespace ccp
