// Sliding-window rate estimation for sending and delivery rates.
//
// The paper's datapath primitive (3) requires "statistics on ... packet
// delivery rates". This estimator counts bytes over a sliding time window
// and reports bytes/sec; it is the source of Pkt.snd_rate / Pkt.rcv_rate
// presented to fold functions.
//
// History lives in a fixed-capacity ring allocated once at construction:
// on_bytes()/rate_bps() never allocate, which the per-ACK hot path
// depends on (see docs/PERF.md). When the ring fills before time expires
// old events, the oldest event is folded into the window-edge anchor —
// the estimate degrades gracefully to "bytes since anchor / time since
// anchor" rather than growing memory.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace ccp {

class RateEstimator {
 public:
  /// `window`: how much history contributes to the estimate. Congestion
  /// control wants roughly an RTT; callers may retune via set_window().
  /// `capacity`: ring size in events, rounded up to a power of two (min
  /// 8). The default suits a hot flow; million-flow datapaths shrink it
  /// (FlowConfig::rate_ring_entries) because two 512-entry rings per
  /// flow is ~24 KB — the dominant per-flow footprint at scale.
  explicit RateEstimator(Duration window = Duration::from_millis(100),
                         size_t capacity = kDefaultCapacity);

  void set_window(Duration window) {
    window_ = window;
    cache_until_ = TimePoint{};  // retuned window: next query recomputes
  }
  Duration window() const { return window_; }

  /// Record that `bytes` were sent/delivered at `now`. Inline: this runs
  /// (for two estimators) on every send and every ACK, and must stay a
  /// handful of stores. Expiry is deferred to rate_bps(); the ring-full
  /// fold below bounds memory regardless of how stale the window gets.
  void on_bytes(uint64_t bytes, TimePoint now) {
    if (count() == capacity_) pop_front_into_anchor();  // ring full: fold oldest
    events_[tail_ & (capacity_ - 1)] = {now, bytes};
    ++tail_;
    bytes_in_window_ += bytes;
    total_bytes_ += bytes;
  }

  /// Estimated rate in bytes per second over the trailing window.
  /// Returns 0 until at least two events span a measurable interval.
  double rate_bps(TimePoint now) const;

  /// rate_bps with a short time-to-live cache: recomputes at most once
  /// per window/8 and otherwise returns the previous estimate. The full
  /// computation walks and expires the ring — at per-ACK query rates
  /// that walk dominates the measurement cost, while the estimate it
  /// refreshes is a trailing-window average that barely moves between
  /// adjacent ACKs. An eighth of the window keeps the staleness well
  /// inside the estimator's own smoothing horizon. Used by the per-ACK
  /// packet-field fill; control decisions that want an exact-now reading
  /// keep calling rate_bps().
  double rate_bps_cached(TimePoint now) const {
    if (now >= cache_until_) {
      cache_rate_ = rate_bps(now);
      cache_until_ = now + window_ / 8;
    }
    return cache_rate_;
  }

  /// Address the next on_bytes() will write. The batch intake's lookahead
  /// pipeline prefetches it so a cold flow's ring line is already in
  /// flight when the record lands.
  const void* write_pos() const { return &events_[tail_ & (capacity_ - 1)]; }

  /// Total bytes recorded since construction (monotone counter).
  uint64_t total_bytes() const { return total_bytes_; }

  void reset();

  /// Full reinitialization for flow-slot recycling: clears history *and*
  /// the monotone byte counter, and retunes the window. The ring is
  /// resized only when the requested capacity differs from the current
  /// one, so a same-shape reinit (steady-state churn) never allocates.
  void reinit(Duration window, size_t capacity);

  size_t capacity() const { return capacity_; }

  // Default ring capacity (power of two). At one event per ACK this is
  // ~0.5 ms of history at 1M ACKs/sec — beyond it the anchor fallback
  // takes over, which is exactly the regime where per-event resolution
  // stops mattering.
  static constexpr size_t kDefaultCapacity = 512;

 private:
  struct Event {
    TimePoint time;
    uint64_t bytes;
  };

  static size_t round_capacity(size_t capacity);

  size_t count() const { return tail_ - head_; }
  const Event& front() const { return events_[head_ & (capacity_ - 1)]; }
  void pop_front_into_anchor() const {
    const Event& ev = front();
    bytes_in_window_ -= ev.bytes;
    anchor_time_ = ev.time;
    anchor_valid_ = true;
    ++head_;
  }
  void expire(TimePoint now) const;

  Duration window_;
  size_t capacity_ = kDefaultCapacity;  // power of two, set at construction
  // mutable: expire() trims history from const accessors.
  mutable std::vector<Event> events_;  // ring storage, sized once
  mutable uint64_t head_ = 0;          // monotone ring indices
  mutable uint64_t tail_ = 0;
  mutable uint64_t bytes_in_window_ = 0;
  // Time of the most recently expired event: once events start aging
  // out, the measurement interval is anchored at the window edge, so an
  // ACK burst after a quiet gap is averaged over the gap rather than
  // over the burst's own microseconds.
  mutable TimePoint anchor_time_{};
  mutable bool anchor_valid_ = false;
  // rate_bps_cached TTL state. cache_until_ at the epoch forces the first
  // query (and the first after set_window) to compute.
  mutable double cache_rate_ = 0.0;
  mutable TimePoint cache_until_{};
  uint64_t total_bytes_ = 0;
};

}  // namespace ccp
