#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace ccp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void init_logging_from_env() {
  const char* env = std::getenv("CCP_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) set_log_level(LogLevel::Trace);
  else if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::Debug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::Info);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::Warn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::Error);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::Off);
}

namespace detail {

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip leading path components for readability.
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::fprintf(stderr, "[%s] %s:%d: %s\n", level_name(level), base, line, msg.c_str());
}

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail
}  // namespace ccp
