#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ccp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mu;
LogSink g_sink;  // guarded by g_sink_mu; empty = default stderr writer

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void init_logging_from_env() {
  const char* env = std::getenv("CCP_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) set_log_level(LogLevel::Trace);
  else if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::Debug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::Info);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::Warn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::Error);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::Off);
}

namespace detail {

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip leading path components for readability.
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  {
    const std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_sink) {
      g_sink(level, base, line, msg);
      return;
    }
  }
  std::fprintf(stderr, "[%s] %s:%d: %s\n", level_name(level), base, line, msg.c_str());
}

std::string format_log(const char* fmt, ...) {
  // Common messages format into the stack buffer with one vsnprintf;
  // longer ones fall back to an exact heap allocation, bounded by
  // kMaxLogBytes with a visible truncation marker.
  char stack_buf[512];
  constexpr size_t kMaxLogBytes = 64 * 1024;

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "<log format error>";
  }
  const size_t want = static_cast<size_t>(needed);
  if (want < sizeof(stack_buf)) {
    va_end(args_copy);
    return std::string(stack_buf, want);
  }
  const size_t keep = want < kMaxLogBytes ? want : kMaxLogBytes;
  std::string out(keep + 1, '\0');
  std::vsnprintf(out.data(), keep + 1, fmt, args_copy);
  va_end(args_copy);
  out.resize(keep);
  if (want > keep) out += "…";  // message exceeded the cap: mark the cut
  return out;
}

}  // namespace detail
}  // namespace ccp
