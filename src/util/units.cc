#include "util/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ccp {
namespace {

struct NumberAndSuffix {
  double value;
  std::string suffix;  // lower-cased, whitespace stripped
};

NumberAndSuffix split(std::string_view text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  const size_t start = i;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '+' || text[i] == '-' || text[i] == 'e' || text[i] == 'E')) {
    // Don't swallow unit letters that happen to be 'e' without digits after.
    if ((text[i] == 'e' || text[i] == 'E') &&
        (i + 1 >= text.size() ||
         (!std::isdigit(static_cast<unsigned char>(text[i + 1])) && text[i + 1] != '+' &&
          text[i + 1] != '-'))) {
      break;
    }
    ++i;
  }
  if (i == start) throw std::invalid_argument("no number in: " + std::string(text));
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data() + start, text.data() + i, value);
  if (ec != std::errc() || ptr != text.data() + i) {
    throw std::invalid_argument("bad number in: " + std::string(text));
  }
  std::string suffix;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (!std::isspace(static_cast<unsigned char>(c))) {
      suffix.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return {value, suffix};
}

}  // namespace

double parse_bandwidth_bps(std::string_view text) {
  auto [value, suffix] = split(text);
  double scale;
  if (suffix == "bps" || suffix == "bit" || suffix == "bit/s" || suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "kbps" || suffix == "kbit" || suffix == "kbit/s") {
    scale = 1e3;
  } else if (suffix == "mbps" || suffix == "mbit" || suffix == "mbit/s") {
    scale = 1e6;
  } else if (suffix == "gbps" || suffix == "gbit" || suffix == "gbit/s") {
    scale = 1e9;
  } else {
    throw std::invalid_argument("unknown bandwidth unit: " + suffix);
  }
  return value * scale;
}

Duration parse_duration(std::string_view text) {
  auto [value, suffix] = split(text);
  double ns;
  if (suffix == "ns") {
    ns = value;
  } else if (suffix == "us") {
    ns = value * 1e3;
  } else if (suffix == "ms") {
    ns = value * 1e6;
  } else if (suffix == "s" || suffix.empty()) {
    ns = value * 1e9;
  } else {
    throw std::invalid_argument("unknown duration unit: " + suffix);
  }
  return Duration::from_nanos(static_cast<int64_t>(std::llround(ns)));
}

uint64_t parse_bytes(std::string_view text) {
  auto [value, suffix] = split(text);
  double scale;
  if (suffix == "b" || suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "kb") {
    scale = 1e3;
  } else if (suffix == "mb") {
    scale = 1e6;
  } else if (suffix == "gb") {
    scale = 1e9;
  } else {
    throw std::invalid_argument("unknown byte unit: " + suffix);
  }
  return static_cast<uint64_t>(std::llround(value * scale));
}

namespace {
std::string format_scaled(double v, const char* const* prefixes, int count, double base,
                          const char* unit) {
  int idx = 0;
  while (idx + 1 < count && std::abs(v) >= base) {
    v /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s%s", v, prefixes[idx], unit);
  return buf;
}
}  // namespace

std::string format_bandwidth(double bits_per_sec) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T"};
  return format_scaled(bits_per_sec, kPrefixes, 5, 1000.0, "bit/s");
}

std::string format_duration(Duration d) {
  const double ns = static_cast<double>(d.nanos());
  char buf[64];
  if (std::abs(ns) < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (std::abs(ns) < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else if (std::abs(ns) < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T"};
  return format_scaled(bytes, kPrefixes, 5, 1000.0, "B");
}

}  // namespace ccp
