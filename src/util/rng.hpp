// Deterministic pseudo-random number generation (xoshiro256++).
//
// The simulator must be bit-for-bit reproducible across platforms, so we
// avoid std::mt19937/std::uniform_* (whose distributions are
// implementation-defined) and implement the generator and distributions
// ourselves.
#pragma once

#include <array>
#include <cstdint>

namespace ccp {

/// xoshiro256++ by Blackman & Vigna. Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  uint64_t next_u64();

  /// Uniform in [0, bound). Debiased via rejection sampling.
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard exponential with the given mean (inverse-CDF method).
  double exponential(double mean);

  /// Gaussian via Marsaglia polar method.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Fork a statistically independent child stream (used to give each
  /// simulated component its own stream while keeping one master seed).
  Rng split();

 private:
  std::array<uint64_t, 4> s_{};
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace ccp
