// Shared time-series export. One schema for everything that emits
// (t, value) series — `ccp_sim --csv`, sim::Tracer, and the figure
// benches — so plots and downstream scripts parse one format:
//
//   CSV:  header "t_secs,<name>,<name>,..."; one row per sample index,
//         first column from the longest-prefix series, missing cells
//         empty.
//   JSON: "[[t,v],[t,v],...]" — a value suitable for a bench_json.hpp
//         section entry.
//
// Works with any point type exposing `.t_secs` and `.value` doubles
// (sim::TracePoint, util::SeriesPoint, ...).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace ccp::util {

struct SeriesPoint {
  double t_secs;
  double value;
};

/// Evenly spaced series from raw values: t = t0, t0+dt, t0+2dt, ...
inline std::vector<SeriesPoint> make_series(const std::vector<double>& values,
                                            double t0, double dt) {
  std::vector<SeriesPoint> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back({t0 + static_cast<double>(i) * dt, values[i]});
  }
  return out;
}

/// Writes the canonical CSV schema: series become columns aligned on
/// sample index.
template <typename Point>
void write_series_csv(std::FILE* out,
                      const std::map<std::string, std::vector<Point>>& all) {
  std::fprintf(out, "t_secs");
  for (const auto& [name, series] : all) std::fprintf(out, ",%s", name.c_str());
  std::fprintf(out, "\n");
  size_t longest = 0;
  for (const auto& [name, series] : all) {
    longest = series.size() > longest ? series.size() : longest;
  }
  for (size_t row = 0; row < longest; ++row) {
    bool first = true;
    for (const auto& [name, series] : all) {
      if (first) {
        std::fprintf(out, "%.3f", row < series.size() ? series[row].t_secs : 0.0);
        first = false;
      }
      if (row < series.size()) std::fprintf(out, ",%.3f", series[row].value);
      else std::fprintf(out, ",");
    }
    std::fprintf(out, "\n");
  }
}

/// One series as a JSON array value: "[[t,v],...]".
template <typename Point>
std::string series_json_value(const std::vector<Point>& pts) {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < pts.size(); ++i) {
    const int n = std::snprintf(buf, sizeof(buf), "%s[%.6g,%.6g]", i ? "," : "",
                                pts[i].t_secs, pts[i].value);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  }
  out += "]";
  return out;
}

/// Jain's fairness index over per-flow allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly fair, 1/n = one flow takes everything. Empty or
/// all-zero input returns 0.
inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

/// One per-flow row of the shared flow-summary schema: what every
/// multi-flow experiment reports about each flow. `write_flow_summary_csv`
/// and `flow_summary_json` are the canonical emitters; the scenario
/// scorecard and the fig3/fig4 benches all use this shape.
struct FlowSummaryRow {
  std::string name;          // e.g. "cubic/0"
  double throughput_mbps = 0;
  double share = 0;          // fraction of aggregate throughput
  double retransmits = 0;    // per-flow retransmit counter
  double timeouts = 0;
  double rtt_p50_ms = 0;
  double rtt_p95_ms = 0;
};

inline void write_flow_summary_csv(std::FILE* out,
                                   const std::vector<FlowSummaryRow>& rows) {
  std::fprintf(out,
               "flow,throughput_mbps,share,retransmits,timeouts,"
               "rtt_p50_ms,rtt_p95_ms\n");
  for (const auto& r : rows) {
    std::fprintf(out, "%s,%.3f,%.4f,%.0f,%.0f,%.3f,%.3f\n", r.name.c_str(),
                 r.throughput_mbps, r.share, r.retransmits, r.timeouts,
                 r.rtt_p50_ms, r.rtt_p95_ms);
  }
}

/// Flow-summary rows as a JSON array value (objects, one per flow).
inline std::string flow_summary_json(const std::vector<FlowSummaryRow>& rows) {
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const int n = std::snprintf(
        buf, sizeof(buf),
        "%s{\"flow\":\"%s\",\"throughput_mbps\":%.6g,\"share\":%.6g,"
        "\"retransmits\":%.6g,\"timeouts\":%.6g,\"rtt_p50_ms\":%.6g,"
        "\"rtt_p95_ms\":%.6g}",
        i ? "," : "", rows[i].name.c_str(), rows[i].throughput_mbps,
        rows[i].share, rows[i].retransmits, rows[i].timeouts,
        rows[i].rtt_p50_ms, rows[i].rtt_p95_ms);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  }
  out += "]";
  return out;
}

}  // namespace ccp::util
