// Shared time-series export. One schema for everything that emits
// (t, value) series — `ccp_sim --csv`, sim::Tracer, and the figure
// benches — so plots and downstream scripts parse one format:
//
//   CSV:  header "t_secs,<name>,<name>,..."; one row per sample index,
//         first column from the longest-prefix series, missing cells
//         empty.
//   JSON: "[[t,v],[t,v],...]" — a value suitable for a bench_json.hpp
//         section entry.
//
// Works with any point type exposing `.t_secs` and `.value` doubles
// (sim::TracePoint, util::SeriesPoint, ...).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace ccp::util {

struct SeriesPoint {
  double t_secs;
  double value;
};

/// Evenly spaced series from raw values: t = t0, t0+dt, t0+2dt, ...
inline std::vector<SeriesPoint> make_series(const std::vector<double>& values,
                                            double t0, double dt) {
  std::vector<SeriesPoint> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back({t0 + static_cast<double>(i) * dt, values[i]});
  }
  return out;
}

/// Writes the canonical CSV schema: series become columns aligned on
/// sample index.
template <typename Point>
void write_series_csv(std::FILE* out,
                      const std::map<std::string, std::vector<Point>>& all) {
  std::fprintf(out, "t_secs");
  for (const auto& [name, series] : all) std::fprintf(out, ",%s", name.c_str());
  std::fprintf(out, "\n");
  size_t longest = 0;
  for (const auto& [name, series] : all) {
    longest = series.size() > longest ? series.size() : longest;
  }
  for (size_t row = 0; row < longest; ++row) {
    bool first = true;
    for (const auto& [name, series] : all) {
      if (first) {
        std::fprintf(out, "%.3f", row < series.size() ? series[row].t_secs : 0.0);
        first = false;
      }
      if (row < series.size()) std::fprintf(out, ",%.3f", series[row].value);
      else std::fprintf(out, ",");
    }
    std::fprintf(out, "\n");
  }
}

/// One series as a JSON array value: "[[t,v],...]".
template <typename Point>
std::string series_json_value(const std::vector<Point>& pts) {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < pts.size(); ++i) {
    const int n = std::snprintf(buf, sizeof(buf), "%s[%.6g,%.6g]", i ? "," : "",
                                pts[i].t_secs, pts[i].value);
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  }
  out += "]";
  return out;
}

}  // namespace ccp::util
