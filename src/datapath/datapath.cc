#include "datapath/datapath.hpp"

#include <algorithm>
#include <limits>

#include "lang/error.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {

CcpDatapath::CcpDatapath(DatapathConfig config, FrameTx tx)
    : config_(config), tx_(std::move(tx)) {
  // One sink shared by every flow the table constructs (copied per slot
  // construction, not per create — recycled slots keep their copy).
  flows_.set_sink([this](const ipc::Message& msg, bool urgent) {
    // `oldest_pending_` needs a timestamp; flows stamp messages via the
    // enqueue path below with the time of their triggering event. We use
    // the flow's last event time implicitly: enqueue() receives it from
    // tick()/on_ack() callers through the flow; here we approximate with
    // the batcher's own clock, which tick() keeps fresh.
    enqueue(msg, urgent, last_event_time_);
  });
  flows_.reserve(config_.expected_flows);
}

CcpFlow& CcpDatapath::create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                                  TimePoint now) {
  return create_flow_with_id(next_flow_id_++, cfg, alg_hint, now);
}

void CcpDatapath::publish_table_gauges() {
  auto& m = telemetry::metrics();
  m.active_flows.set(static_cast<int64_t>(flows_.size()));
  m.dp_flows.set(static_cast<int64_t>(flows_.size()));
  m.dp_table_load_factor.set(
      static_cast<int64_t>(flows_.load_factor() * 10000.0));
  if (shard_stats_ != nullptr) {
    shard_stats_->flows.set(static_cast<int64_t>(flows_.size()));
  }
}

void CcpDatapath::pump_rehash() {
  const size_t scanned = flows_.rehash_step(config_.rehash_step_buckets);
  if (scanned > 0 && telemetry::enabled()) {
    telemetry::metrics().dp_flow_rehash_steps.inc();
  }
}

CcpFlow& CcpDatapath::create_flow_with_id(ipc::FlowId id, const FlowConfig& cfg,
                                          const std::string& alg_hint,
                                          TimePoint now) {
  // Keep locally assigned ids clear of caller-chosen ones.
  if (id >= next_flow_id_) next_flow_id_ = id + 1;
  CcpFlow& ref = flows_.create(id, cfg, alg_hint);
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.flows_created.inc();
    m.dp_flow_creates.inc();
    publish_table_gauges();
  }
  telemetry::trace(telemetry::TraceKind::FlowCreate, id,
                   static_cast<double>(cfg.init_cwnd_bytes));

  auto& create = std::get<ipc::CreateMsg>(create_msg_);
  create.flow_id = id;
  create.init_cwnd_bytes = static_cast<uint32_t>(cfg.init_cwnd_bytes);
  create.mss = cfg.mss;
  create.alg_hint = alg_hint;  // string assign: capacity reused across creates
  enqueue(create_msg_, /*urgent=*/true, now);
  return ref;
}

void CcpDatapath::close_flow(ipc::FlowId id, TimePoint now) {
  if (CcpFlow* fl = flows_.find(id); fl != nullptr) {
    if (telemetry::enabled()) {
      auto& m = telemetry::metrics();
      // Residual ACK accounting the flow hasn't drained at a report/tick.
      m.dp_acks.inc(fl->take_unreported_acks());
      m.flows_closed.inc();
      m.dp_flow_closes.inc();
    }
    flows_.erase(id);  // parks the slot; the next create recycles it
    if (telemetry::enabled()) publish_table_gauges();
    telemetry::trace(telemetry::TraceKind::FlowClose, id, 0.0);
    auto& close = std::get<ipc::FlowCloseMsg>(close_msg_);
    close.flow_id = id;
    enqueue(close_msg_, /*urgent=*/true, now);
  }
}

void CcpDatapath::handle_frame(std::span<const uint8_t> frame, TimePoint now) {
  ++stats_.frames_received;
  if (telemetry::enabled()) telemetry::metrics().dp_frames_received.inc();
  // Decode into the member scratch (reusing message capacities) unless a
  // nested handle_frame is already using it.
  const bool use_scratch = !rx_busy_;
  std::vector<ipc::Message> local;
  std::vector<ipc::Message>& msgs = use_scratch ? rx_scratch_ : local;
  if (use_scratch) rx_busy_ = true;
  // Decode-stage cycle profiling: frames arrive far less often than
  // ACKs, so the sampler keeps its own tick at the same 1-in-N rate.
  uint64_t prof_c0 = 0;
  if (const uint32_t pmask = telemetry::profile_sample_mask();
      pmask != 0 && telemetry::enabled()) {
    thread_local uint32_t decode_tick = 0;
    if ((++decode_tick & pmask) == 0) [[unlikely]] {
      prof_c0 = telemetry::prof_cycles();
    }
  }
  size_t n_msgs = 0;
  try {
    n_msgs = ipc::decode_frame_into(frame, msgs);
  } catch (const ipc::WireError& e) {
    if (use_scratch) rx_busy_ = false;
    ++stats_.decode_errors;
    if (telemetry::enabled()) telemetry::metrics().dp_decode_errors.inc();
    CCP_WARN("datapath: dropping malformed frame: %s", e.what());
    return;
  }
  if (prof_c0 != 0) {
    telemetry::prof_record(telemetry::ProfStage::Decode,
                           telemetry::prof_cycles() - prof_c0);
  }
  // Span close bookkeeping: in the single-core datapath a command is
  // applied synchronously right after decode, so "enqueue" is the decode
  // completion time and "apply" is read per command below.
  const uint64_t enqueue_ns =
      telemetry::spans_active() ? telemetry::now_ns() : 0;
  for (size_t i = 0; i < n_msgs; ++i) {
    const auto& msg = msgs[i];
    ++stats_.msgs_received;
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ipc::InstallMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) {
              try {
                fl->install(m, now);
                telemetry::close_span_now(m.span, enqueue_ns, m.flow_id,
                                          telemetry::SpanCommand::Install);
              } catch (const lang::ProgramError& e) {
                ++stats_.install_errors;
                if (telemetry::enabled()) {
                  telemetry::metrics().dp_install_errors.inc();
                }
                CCP_WARN("datapath: rejecting program for flow %u: %s", m.flow_id,
                         e.what());
              }
            }
          } else if constexpr (std::is_same_v<T, ipc::UpdateFieldsMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) {
              try {
                fl->update_fields(m, now);
                telemetry::close_span_now(m.span, enqueue_ns, m.flow_id,
                                          telemetry::SpanCommand::UpdateFields);
              } catch (const lang::ProgramError& e) {
                ++stats_.install_errors;
                CCP_WARN("datapath: bad update_fields for flow %u: %s", m.flow_id,
                         e.what());
              }
            }
          } else if constexpr (std::is_same_v<T, ipc::DirectControlMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) {
              fl->direct_control(m, now);
              telemetry::close_span_now(m.span, enqueue_ns, m.flow_id,
                                        telemetry::SpanCommand::DirectControl);
            }
          } else if constexpr (std::is_same_v<T, ipc::ResyncRequestMsg>) {
            replay_flow_summaries(now, m.token);
          } else {
            CCP_WARN("datapath: unexpected message type %d from agent",
                     static_cast<int>(ipc::message_type(ipc::Message(m))));
          }
        },
        msg);
  }
  if (use_scratch) rx_busy_ = false;
}

size_t CcpDatapath::replay_flow_summaries(TimePoint now, uint64_t token) {
  size_t replayed = 0;
  // Slot (creation) order; the summary scratch and the interned hint
  // keep a million-flow replay free of per-flow allocation.
  flows_.for_each([&](CcpFlow& fl, const std::string& hint) {
    auto& summary = std::get<ipc::FlowSummaryMsg>(summary_msg_);
    summary.flow_id = fl.id();
    summary.mss = fl.config().mss;
    summary.cwnd_bytes = static_cast<uint32_t>(
        std::min<uint64_t>(fl.cwnd_bytes(), 0xffffffffu));
    const int64_t srtt_us = fl.srtt().micros();
    summary.srtt_us = srtt_us > 0 ? static_cast<uint64_t>(srtt_us) : 0;
    summary.in_fallback = fl.in_fallback();
    summary.alg_hint = hint;
    summary.token = token;
    enqueue(summary_msg_, /*urgent=*/false, now);
    telemetry::trace(telemetry::TraceKind::Resync, fl.id(),
                     static_cast<double>(summary.cwnd_bytes));
    ++replayed;
  });
  if (telemetry::enabled() && replayed > 0) {
    telemetry::metrics().dp_resync_flows.inc(replayed);
  }
  flush();
  return replayed;
}

void CcpDatapath::tick(TimePoint now) {
  last_event_time_ = now;
  // Pump the incremental rehash from the tick path too: an idle shard
  // mid-grow still drains without waiting for ACK traffic.
  if (flows_.rehash_pending()) [[unlikely]] pump_rehash();
  // Per-flow maintenance, bounded when configured: tick_flow_budget = 0
  // sweeps every flow from slot 0 (the historical full walk, creation
  // order); a budget sweeps a bounded cohort behind a round-robin
  // cursor, the same bounded-per-call contract the rehash gives the
  // index — a million mostly-idle flows never stall one tick call.
  const size_t budget = config_.tick_flow_budget == 0
                            ? std::numeric_limits<size_t>::max()
                            : config_.tick_flow_budget;
  const size_t start = config_.tick_flow_budget == 0 ? 0 : tick_sweep_cursor_;
  // Drain per-flow ACK counts into the global counter on a slow cadence
  // (and at report/close) instead of paying an atomic RMW on every ACK.
  // Flows that report regularly drain themselves in emit_report; this
  // catches idle tails — flows that stopped folding, or whose program
  // never Report()s — so ccp_dp_acks_total still converges. Every 64th
  // tick is plenty fresh for a rate counter and keeps the drain walk off
  // the tick path a high-frequency driver spins.
  if ((++tick_seq_ & 63) == 0 && telemetry::enabled()) {
    uint64_t acks = 0;
    tick_sweep_cursor_ = flows_.sweep(start, budget, [&](CcpFlow& flow) {
      acks += flow.take_unreported_acks();
      flow.tick(now);
    });
    if (acks > 0) telemetry::metrics().dp_acks.inc(acks);
  } else {
    tick_sweep_cursor_ =
        flows_.sweep(start, budget, [&](CcpFlow& flow) { flow.tick(now); });
  }
  if (pending_msgs_ > 0 && now - oldest_pending_ >= config_.flush_interval) {
    flush();
  }
}

void CcpDatapath::enqueue(const ipc::Message& msg, bool urgent, TimePoint now) {
  if (shard_stats_ != nullptr && telemetry::enabled()) {
    // Per-shard attribution, per message (i.e. per report interval, not
    // per ACK): the aggregate dp_* counters in emit_report() keep their
    // totals; these break the same traffic down by owning shard.
    if (const auto* m = std::get_if<ipc::MeasurementMsg>(&msg)) {
      shard_stats_->reports.inc();
      shard_stats_->acks.inc(m->num_acks_folded);
    } else if (std::holds_alternative<ipc::UrgentMsg>(msg)) {
      shard_stats_->urgents.inc();
    }
  }
  if (pending_msgs_ == 0) {
    oldest_pending_ = now;
    batch_enc_.clear();
    batch_enc_.u16(0);  // frame msg count, patched at flush
  }
  ipc::encode_message(batch_enc_, msg);
  ++pending_msgs_;
  if (urgent || config_.flush_interval.is_zero() ||
      pending_msgs_ >= config_.max_batch_msgs ||
      pending_msgs_ == 0xffff /* u16 frame-count ceiling */) {
    flush();
  }
}

void CcpDatapath::flush() {
  if (pending_msgs_ == 0) return;
  batch_enc_.patch_u16(0, static_cast<uint16_t>(pending_msgs_));
  stats_.msgs_sent += pending_msgs_;
  stats_.bytes_sent += batch_enc_.size();
  ++stats_.frames_sent;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_frames_sent.inc();
    m.dp_flush_batch.record(pending_msgs_);
  }
  pending_msgs_ = 0;
  // Swap the frame out before transmitting: tx_ may synchronously loop a
  // response back into handle_frame -> enqueue, which must find the
  // encoder empty and ready. flush_buf_ keeps the frame bytes alive for
  // the duration of the call (receivers copy before returning) and its
  // capacity is recycled as the encoder's next buffer.
  flush_buf_.swap(batch_enc_.buffer());
  batch_enc_.clear();
  tx_(flush_buf_);
}

}  // namespace ccp::datapath
