#include "datapath/datapath.hpp"

#include "lang/error.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {

CcpDatapath::CcpDatapath(DatapathConfig config, FrameTx tx)
    : config_(config), tx_(std::move(tx)) {}

CcpFlow& CcpDatapath::create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                                  TimePoint now) {
  const ipc::FlowId id = next_flow_id_++;
  auto sink = [this, id](ipc::Message msg, bool urgent) {
    // `oldest_pending_` needs a timestamp; flows stamp messages via the
    // enqueue path below with the time of their triggering event. We use
    // the flow's last event time implicitly: enqueue() receives it from
    // tick()/on_ack() callers through the flow; here we approximate with
    // the batcher's own clock, which tick() keeps fresh.
    enqueue(std::move(msg), urgent, last_event_time_);
  };
  auto flow = std::make_unique<CcpFlow>(id, cfg, std::move(sink));
  CcpFlow& ref = *flow;
  flows_.emplace(id, std::move(flow));

  ipc::CreateMsg create;
  create.flow_id = id;
  create.init_cwnd_bytes = static_cast<uint32_t>(cfg.init_cwnd_bytes);
  create.mss = cfg.mss;
  create.alg_hint = alg_hint;
  enqueue(create, /*urgent=*/true, now);
  return ref;
}

void CcpDatapath::close_flow(ipc::FlowId id, TimePoint now) {
  if (flows_.erase(id) > 0) {
    enqueue(ipc::FlowCloseMsg{id}, /*urgent=*/true, now);
  }
}

CcpFlow* CcpDatapath::flow(ipc::FlowId id) {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : it->second.get();
}

void CcpDatapath::handle_frame(std::span<const uint8_t> frame, TimePoint now) {
  ++stats_.frames_received;
  std::vector<ipc::Message> msgs;
  try {
    msgs = ipc::decode_frame(frame);
  } catch (const ipc::WireError& e) {
    ++stats_.decode_errors;
    CCP_WARN("datapath: dropping malformed frame: %s", e.what());
    return;
  }
  for (const auto& msg : msgs) {
    ++stats_.msgs_received;
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ipc::InstallMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) {
              try {
                fl->install(m, now);
              } catch (const lang::ProgramError& e) {
                ++stats_.install_errors;
                CCP_WARN("datapath: rejecting program for flow %u: %s", m.flow_id,
                         e.what());
              }
            }
          } else if constexpr (std::is_same_v<T, ipc::UpdateFieldsMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) {
              try {
                fl->update_fields(m, now);
              } catch (const lang::ProgramError& e) {
                ++stats_.install_errors;
                CCP_WARN("datapath: bad update_fields for flow %u: %s", m.flow_id,
                         e.what());
              }
            }
          } else if constexpr (std::is_same_v<T, ipc::DirectControlMsg>) {
            if (CcpFlow* fl = flow(m.flow_id)) fl->direct_control(m, now);
          } else {
            CCP_WARN("datapath: unexpected message type %d from agent",
                     static_cast<int>(ipc::message_type(ipc::Message(m))));
          }
        },
        msg);
  }
}

void CcpDatapath::tick(TimePoint now) {
  last_event_time_ = now;
  for (auto& [id, flow] : flows_) flow->tick(now);
  if (!pending_.empty() && now - oldest_pending_ >= config_.flush_interval) {
    flush();
  }
}

void CcpDatapath::enqueue(ipc::Message msg, bool urgent, TimePoint now) {
  if (pending_.empty()) oldest_pending_ = now;
  pending_.push_back(std::move(msg));
  if (urgent || config_.flush_interval.is_zero() ||
      pending_.size() >= config_.max_batch_msgs) {
    flush();
  }
}

void CcpDatapath::flush() {
  if (pending_.empty()) return;
  auto frame = ipc::encode_frame(pending_);
  stats_.msgs_sent += pending_.size();
  stats_.bytes_sent += frame.size();
  ++stats_.frames_sent;
  pending_.clear();
  tx_(std::move(frame));
}

}  // namespace ccp::datapath
