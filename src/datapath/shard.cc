#include "datapath/shard.hpp"

#include <bit>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {

CommandQueue::CommandQueue(size_t capacity) {
  const size_t cap = std::bit_ceil(capacity < 2 ? size_t{2} : capacity);
  slots_.resize(cap);
  mask_ = cap - 1;
}

bool CommandQueue::push(ShardCommand cmd) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
    return false;  // consumer is capacity commands behind
  }
  slots_[tail & mask_] = std::move(cmd);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

Shard::Shard(uint32_t index, const DatapathConfig& config,
             CcpDatapath::FrameTx lane_tx, size_t command_queue_capacity)
    : index_(index),
      dp_(config, std::move(lane_tx)),
      commands_(command_queue_capacity) {
  dp_.set_shard_stats(&telemetry::shard_stats(index));
}

CcpFlow& Shard::create_flow(ipc::FlowId id, const FlowConfig& cfg,
                            const std::string& alg_hint, TimePoint now) {
  return dp_.create_flow_with_id(id, cfg, alg_hint, now);
}

void Shard::close_flow(ipc::FlowId id, TimePoint now) {
  dp_.close_flow(id, now);
}

void Shard::poll(TimePoint now) {
  if (commands_.has_pending()) {
    const size_t applied =
        commands_.drain([&](ShardCommand& cmd) { apply(cmd, now); });
    if (applied > 0 && telemetry::enabled()) {
      telemetry::shard_stats(index_).commands.inc(applied);
    }
  }
  dp_.tick(now);
}

void Shard::apply(ShardCommand& cmd, TimePoint now) {
  if (cmd.kind == ShardCommand::Kind::Resync) {
    // Shard-wide: replay every owned flow on this shard's lane. FIFO
    // ordering already applied any earlier-published commands, so the
    // summaries reflect the newest state the agent could have installed.
    dp_.replay_flow_summaries(now, cmd.resync_token);
    return;
  }
  CcpFlow* fl = dp_.flow(cmd.flow_id);
  if (fl == nullptr) return;  // closed while the command was in flight
  telemetry::SpanCommand span_cmd = telemetry::SpanCommand::DirectControl;
  switch (cmd.kind) {
    case ShardCommand::Kind::Install:
      // Compile and variable binding already happened on the control
      // plane; this is the swap of an immutable shared program plus the
      // per-flow FoldMachine re-init.
      fl->install_compiled(std::move(cmd.program), std::move(cmd.var_values),
                           cmd.vector_mode, now);
      span_cmd = telemetry::SpanCommand::Install;
      break;
    case ShardCommand::Kind::UpdateFields: {
      ipc::UpdateFieldsMsg msg;
      msg.flow_id = cmd.flow_id;
      msg.var_values = std::move(cmd.var_values);
      fl->update_fields(msg, now);
      span_cmd = telemetry::SpanCommand::UpdateFields;
      break;
    }
    case ShardCommand::Kind::DirectControl: {
      ipc::DirectControlMsg msg;
      msg.flow_id = cmd.flow_id;
      msg.cwnd_bytes = cmd.cwnd_bytes;
      msg.rate_bps = cmd.rate_bps;
      fl->direct_control(msg, now);
      break;
    }
    case ShardCommand::Kind::Resync:
      break;  // unreachable: handled before the flow lookup
  }
  // Quiescent-point span close: the full report->decide->install loop
  // ends here on the sharded datapath.
  telemetry::close_span_now(cmd.span, cmd.enqueue_ns, cmd.flow_id, span_cmd);
}

}  // namespace ccp::datapath
