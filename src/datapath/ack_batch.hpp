// Cross-flow batch execution of the per-ACK path.
//
// The scalar path (CcpFlow::on_ack) walks one flow at a time: measure,
// gate, fold, control. When the stack hands the datapath a burst of ACKs
// — NIC interrupt coalescing, GRO, or a poll loop draining a queue —
// most of those ACKs belong to flows running the *same* compiled fold
// program, and the per-ACK fixed costs (dispatch, telemetry gates,
// profiler checks) repeat identically per lane. AckBatchRunner fuses the
// burst: it prepares every flow (measurement + watchdog) at intake,
// groups lanes by program, gathers each group's hot registers into
// struct-of-arrays slices, folds the whole group in one call — the JIT's
// packed-SIMD batch kernel when the program is eligible, the scalar
// batch interpreter otherwise — and then finishes every lane (urgent +
// control/report) in arrival order so the wire is byte-identical to the
// scalar path.
//
// The dominant shape of a wave is a single group (every lane runs the
// same program on the same engine), and the runner is laid out around
// it: lanes that join the wave's *first* group stage their SoA columns
// at intake — while the flow's hot block and packet view are already in
// cache from ack_prepare — and scatter back during the arrival-order
// finish walk, so the common case touches each flow in exactly two
// passes (intake, finish) with one grouped fold call between them.
// Later groups of a mixed wave take the generic gather/execute/scatter
// path on a secondary arena.
//
// Lanes the fused loop cannot serve bit-exactly peel out to the plain
// scalar on_ack at their arrival position: flows without an installed
// program, vector-mode flows, profiler-sampled ACKs (the per-stage
// stamps belong to the scalar stage layout), and flows whose watchdog
// deadline has expired (fallback entry emits messages mid-sequence,
// which only the scalar path may do).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/events.hpp"
#include "ipc/message.hpp"
#include "lang/bytecode.hpp"
#include "lang/jit/jit.hpp"

namespace ccp::lang {
struct CompiledProgram;
}

namespace ccp::datapath {

class CcpDatapath;
class CcpFlow;

/// One ACK of a burst, addressed by flow. `sent_bytes` carries the bytes
/// the stack sent for this flow since its previous event (0 = none) so a
/// burst intake replaces the usual on_send/on_ack call pair.
struct FlowAck {
  ipc::FlowId flow_id = 0;
  uint64_t sent_bytes = 0;
  AckEvent ev;
};

/// Executes bursts of ACKs wave by wave (at most lang::kBatchLanes lanes
/// per wave). Owns the struct-of-arrays staging buffers, which grow to
/// the largest program seen and are then reused forever — the steady
/// state is allocation-free (hotpath_alloc_test pins this).
///
/// Not thread-safe: one runner per shard/datapath, called from its owner
/// thread only.
class AckBatchRunner {
 public:
  AckBatchRunner();

  /// Runs every ACK of `burst` against `dp`'s flows. Unknown flow ids
  /// are skipped. Equivalent to the scalar on_send/on_ack sequence in
  /// arrival order, message for message.
  void run(CcpDatapath& dp, std::span<const FlowAck> burst);

 private:
  /// One ≤32-ACK chunk after the intake prefetch sweeps: `look[i]` is
  /// the resolved (possibly seen-tagged) flow for burst[i].
  void run_chunk(CcpDatapath& dp, std::span<const FlowAck> burst,
                 CcpFlow* const* look);

 public:

 private:
  // The lane's execution engine (cached per flow; see BatchExec in
  // events.hpp). Doubles as part of the grouping key so one grouped
  // call never mixes engines.
  using Exec = BatchExec;

  struct Lane {
    CcpFlow* flow = nullptr;
    const FlowAck* ack = nullptr;  // full event, read back only on peel
    TimePoint now{};               // finish-time clock (== ack->ev.now)
    Exec exec = Exec::Peel;
    bool urgent = false;   // fold verdict, consumed by ack_finish
    int8_t lead_col = -1;  // staged column in the lead arena, -1 = none
  };

  struct Group {
    const lang::CompiledProgram* prog = nullptr;
    Exec exec = Exec::Peel;
    uint8_t n = 0;
    uint8_t lane[lang::kBatchLanes] = {};  // indices into lanes_, arrival order
  };

  /// One set of struct-of-arrays staging rows, stride lang::kBatchLanes.
  /// Grow-only: sized for the largest program seen, then reused forever.
  struct Arena {
    std::vector<double> fold;
    std::vector<double> pkt;  // kNumPktFields rows, writes gated by the
                              // program's pkt_fields_used bitmap
    std::vector<double> vars;
    std::vector<double> scratch;
    std::vector<double> urgent_before;  // urgent-register snapshot rows
  };

  static Exec classify(CcpFlow& flow, TimePoint now);
  void flush_wave();
  void execute_group(const Group& g, bool staged);
  static void reserve(Arena& a, const lang::CompiledProgram& prog);
  /// Copies one flow's fold registers, vars, used packet fields, and
  /// urgent snapshot into column `col` of the lead arena.
  void stage_lane(CcpFlow& flow, const lang::CompiledProgram& prog, size_t col);
  void gather(const Group& g, Arena& a);
  void scatter_and_judge(const Group& g, Arena& a);

  // Current wave (intake accumulates, flush_wave drains).
  Lane lanes_[lang::kBatchLanes];
  Group groups_[lang::kBatchLanes];
  size_t n_lanes_ = 0;
  size_t n_groups_ = 0;
  uint64_t wave_id_ = 1;    // matched against FlowHot::batch_epoch (0 = never)
  uint32_t burst_stamp_ = 0;  // FlowTable::find_mark prefetch dedup (0 reserved)
  uint64_t wave_seq_ = 0;   // profiler sampling counter (waves, not ACKs)

  Arena lead_;  // wave's first group: staged at intake, scattered at finish
  Arena aux_;   // later groups of mixed waves: gather/execute/scatter
};

}  // namespace ccp::datapath
