#include "datapath/flow_table.hpp"

#include <algorithm>
#include <bit>
#include <new>

namespace ccp::datapath {

namespace {

unsigned shift_for(size_t capacity) {
  // Capacity is a power of two; the hash's top log2(capacity) bits index.
  return 64u - static_cast<unsigned>(std::countr_zero(capacity));
}

}  // namespace

void FlowTable::reserve(size_t expected) {
  if (expected == 0 || live_ != 0 || !old_.empty()) return;
  // Size for 3/4 load at `expected` flows so filling to the expectation
  // never grows.
  size_t cap = std::bit_ceil(std::max(kMinIndexCap, expected * 4 / 3 + 1));
  cur_.assign(cap, Bucket{});
  cur_shift_ = shift_for(cap);
  meta_.reserve(expected);
  slot_flow_.reserve(expected);
}

uint32_t FlowTable::alloc_slot() {
  if (!free_.empty()) {
    const uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(meta_.size());
  const size_t chunk = slot >> kChunkShift;
  if (chunk == hot_chunks_.size()) {
    // New chunk, allocated here — i.e. on the owning shard's worker
    // thread, so first-touch places the slab on that worker's NUMA node.
    hot_chunks_.push_back(std::make_unique<FlowHot[]>(kChunkSlots));
    cold_chunks_.push_back(std::make_unique<ColdSlot[]>(kChunkSlots));
  }
  meta_.push_back(SlotMeta{});
  slot_flow_.push_back(nullptr);
  return slot;
}

uint16_t FlowTable::intern_hint(std::string_view hint) {
  for (size_t i = 0; i < hint_names_.size(); ++i) {
    if (hint_names_[i] == hint) return static_cast<uint16_t>(i);
  }
  if (hint_names_.size() >= 0xffff) return 0;  // pool full: alias slot 0
  hint_names_.emplace_back(hint);
  return static_cast<uint16_t>(hint_names_.size() - 1);
}

CcpFlow& FlowTable::create(ipc::FlowId id, const FlowConfig& cfg,
                           std::string_view alg_hint) {
  if (index_find(id) != kEmptyMark) erase(id);  // replace semantics
  if (hint_names_.empty()) hint_names_.emplace_back();  // index 0 = ""

  const uint32_t slot = alloc_slot();
  SlotMeta& m = meta_[slot];
  m.id = id;
  m.hint = alg_hint.empty() ? 0 : intern_hint(alg_hint);

  const size_t chunk = slot >> kChunkShift;
  const size_t off = slot & kChunkMask;
  FlowHot* hot = &hot_chunks_[chunk][off];
  CcpFlow* flow;
  if (m.state == SlotState::kEmpty) {
    flow = ::new (static_cast<void*>(cold_chunks_[chunk][off].bytes))
        CcpFlow(id, cfg, sink_, hot);
    slot_flow_[slot] = flow;
  } else {
    // Parked slot: the CcpFlow object survives close->create, so every
    // internal buffer (estimator rings, fold state, report scratch)
    // keeps its capacity — the zero-alloc steady-churn path.
    flow = slot_flow_[slot];
    flow->reset_for_reuse(id, cfg);
    ++stats_.recycles;
  }
  m.state = SlotState::kLive;

  index_insert(id, slot);
  ++live_;
  ++stats_.creates;
  return *flow;
}

bool FlowTable::erase(ipc::FlowId id) {
  const uint32_t slot = index_erase(id);
  if (slot == kEmptyMark) return false;
  SlotMeta& m = meta_[slot];
  m.state = SlotState::kParked;
  ++m.generation;  // a handle taken before this close can never resolve
  m.hint = 0;
  slot_flow_[slot]->park();
  free_.push_back(slot);
  --live_;
  ++stats_.closes;
  return true;
}

FlowHandle FlowTable::handle_of(ipc::FlowId id) const {
  const uint32_t slot = index_find(id);
  if (slot == kEmptyMark) return FlowHandle{};
  return FlowHandle{slot, meta_[slot].generation};
}

const std::string& FlowTable::hint_of(ipc::FlowId id) const {
  static const std::string kNone;
  const uint32_t slot = index_find(id);
  if (slot == kEmptyMark || hint_names_.empty()) return kNone;
  return hint_names_[meta_[slot].hint];
}

uint32_t FlowTable::index_find(ipc::FlowId id) const {
  const uint64_t h = mix(id);
  if (!cur_.empty()) {
    const size_t mask = cur_.size() - 1;
    size_t i = static_cast<size_t>(h >> cur_shift_);
    while (true) {
      const Bucket& b = cur_[i];
      if (b.slot == kEmptyMark) break;
      if (b.key == id) return b.slot;
      i = (i + 1) & mask;
    }
  }
  if (!old_.empty()) {
    const size_t mask = old_.size() - 1;
    size_t i = static_cast<size_t>(h >> old_shift_);
    while (true) {
      const Bucket& b = old_[i];
      if (b.slot == kEmptyMark) break;
      if (b.slot != kTombstoneMark && b.key == id) return b.slot;
      i = (i + 1) & mask;
    }
  }
  return kEmptyMark;
}

void FlowTable::raw_insert(std::vector<Bucket>& table, unsigned shift,
                           ipc::FlowId key, uint32_t slot, CcpFlow* flow) {
  const size_t mask = table.size() - 1;
  size_t i = static_cast<size_t>(mix(key) >> shift);
  while (table[i].slot != kEmptyMark) i = (i + 1) & mask;
  table[i] = Bucket{key, slot, 0, flow};
}

void FlowTable::index_insert(ipc::FlowId id, uint32_t slot) {
  if (cur_.empty()) {
    cur_.assign(kMinIndexCap, Bucket{});
    cur_shift_ = shift_for(kMinIndexCap);
  }
  // Grow at 3/4 load of the *current* array, counting every live flow
  // (drained or not): migrated copies never push occupancy past live_.
  if ((live_ + 1) * 4 > cur_.size() * 3) start_grow();
  if (!old_.empty()) migrate(kInsertMigrateBuckets);
  raw_insert(cur_, cur_shift_, id, slot, slot_flow_[slot]);
}

uint32_t FlowTable::index_erase(ipc::FlowId id) {
  uint32_t found = kEmptyMark;
  if (!cur_.empty()) {
    const size_t mask = cur_.size() - 1;
    size_t i = static_cast<size_t>(mix(id) >> cur_shift_);
    while (true) {
      Bucket& b = cur_[i];
      if (b.slot == kEmptyMark) break;
      if (b.key == id) {
        found = b.slot;
        // Backward-shift deletion (cur_ carries no tombstones): pull
        // every displaced successor of the cluster back over the hole.
        size_t hole = i;
        size_t j = (i + 1) & mask;
        while (cur_[j].slot != kEmptyMark) {
          const size_t home =
              static_cast<size_t>(mix(cur_[j].key) >> cur_shift_);
          if (((j - home) & mask) >= ((j - hole) & mask)) {
            cur_[hole] = cur_[j];
            hole = j;
          }
          j = (j + 1) & mask;
        }
        cur_[hole] = Bucket{};
        break;
      }
      i = (i + 1) & mask;
    }
  }
  if (!old_.empty()) {
    // The entry (or its pre-migration original) may still sit in the
    // draining array; tombstone it so a cur_-miss can't resurrect the
    // closed flow. Tombstones keep the probe chain intact — old_ is
    // drain-only, so they never accumulate past one grow.
    const size_t mask = old_.size() - 1;
    size_t i = static_cast<size_t>(mix(id) >> old_shift_);
    while (true) {
      Bucket& b = old_[i];
      if (b.slot == kEmptyMark) break;
      if (b.slot != kTombstoneMark && b.key == id) {
        if (found == kEmptyMark) found = b.slot;
        b.slot = kTombstoneMark;
        break;
      }
      i = (i + 1) & mask;
    }
  }
  return found;
}

void FlowTable::start_grow() {
  if (!old_.empty()) {
    // Unreachable by the insert-budget math (kInsertMigrateBuckets);
    // kept as a correctness backstop rather than an assert so a future
    // tuning mistake degrades to one synchronous drain, not a lost flow.
    ++stats_.forced_drains;
    migrate(old_.size());
  }
  const size_t new_cap = cur_.size() * 2;
  old_ = std::move(cur_);
  old_shift_ = cur_shift_;
  cur_.assign(new_cap, Bucket{});
  cur_shift_ = shift_for(new_cap);
  migrate_pos_ = 0;
  ++stats_.grows;
}

size_t FlowTable::migrate(size_t max_buckets) {
  if (old_.empty()) return 0;
  const size_t cap = old_.size();
  size_t scanned = 0;
  while (migrate_pos_ < cap && scanned < max_buckets) {
    const Bucket& b = old_[migrate_pos_++];
    ++scanned;
    if (b.slot != kEmptyMark && b.slot != kTombstoneMark) {
      // Copy, don't vacate: old_'s probe chains must stay intact for
      // lookups of entries beyond the cursor. cur_ probes first, so the
      // duplicate is unobservable; erase() tombstones both.
      raw_insert(cur_, cur_shift_, b.key, b.slot, b.flow);
    }
  }
  if (migrate_pos_ >= cap) {
    old_ = std::vector<Bucket>();  // drained: release the array
    old_shift_ = 64;
    migrate_pos_ = 0;
  }
  if (scanned > 0) {
    ++stats_.rehash_steps;
    stats_.buckets_migrated += scanned;
    stats_.max_step_buckets = std::max<uint64_t>(stats_.max_step_buckets,
                                                 scanned);
  }
  return scanned;
}

size_t FlowTable::rehash_step(size_t max_buckets) {
  return migrate(max_buckets);
}

void FlowTable::clear() {
  for (size_t s = 0; s < meta_.size(); ++s) {
    if (meta_[s].state != SlotState::kEmpty) slot_flow_[s]->~CcpFlow();
  }
  hot_chunks_.clear();
  cold_chunks_.clear();
  slot_flow_.clear();
  meta_.clear();
  free_.clear();
  live_ = 0;
  cur_ = std::vector<Bucket>();
  old_ = std::vector<Bucket>();
  cur_shift_ = old_shift_ = 64;
  migrate_pos_ = 0;
  hint_names_.clear();
}

}  // namespace ccp::datapath
