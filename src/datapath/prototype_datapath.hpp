// The paper's §3 prototype datapath, as a second independent datapath
// implementation:
//
//   "Our datapath implementation currently does not support user-defined
//    measurements, user specification of urgent messages, or either
//    event vectors or general fold functions. Rather, the prototype
//    datapath reports only the most recent ACK and an EWMA-filtered RTT,
//    sending rate, and receiving rate."
//
// It cannot run programs: Install messages are counted and dropped, and
// CreateMsg announces supports_programs = false, so the agent translates
// algorithm decisions into per-report DirectControl commands instead
// (§2.1: "it is also possible to support programs purely by issuing
// commands from the CCP each RTT").
//
// Having two datapaths behind one agent is the "write once, run
// everywhere" claim made executable: the same algorithm objects drive
// both (see bench_datapath_capability and the integration tests).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "datapath/cc_module.hpp"
#include "datapath/datapath.hpp"  // DatapathConfig
#include "datapath/flow.hpp"      // FlowConfig, MessageSink
#include "ipc/wire.hpp"
#include "util/ewma.hpp"
#include "util/flat_map.hpp"
#include "util/rate_estimator.hpp"
#include "util/time.hpp"

namespace ccp::datapath {

class PrototypeDatapath;

/// One flow on the prototype datapath. Fixed measurement set, fixed
/// per-RTT report cadence, enforcement only via direct cwnd/rate.
class PrototypeFlow final : public CcModule {
 public:
  PrototypeFlow(ipc::FlowId id, FlowConfig config, MessageSink sink);

  // Inline: the prototype's whole per-ACK fold is a dozen scalar updates;
  // keeping it in the header lets the stack's ACK loop absorb it without
  // a call. Estimator windows are retuned at report time (maybe_report),
  // not here — the horizon tracks srtt at control cadence, and per-ACK
  // double->Duration conversions were a measurable slice of the budget.
  void on_ack(const AckEvent& ev) override {
    if (cwnd_target_bytes_ > cwnd_bytes_) {
      // Same smooth-increase discipline as the full datapath.
      cwnd_bytes_ = std::min(cwnd_target_bytes_, cwnd_bytes_ + ev.bytes_acked);
    }
    if (!ev.rtt_sample.is_zero()) {
      const double rtt_us = static_cast<double>(ev.rtt_sample.micros());
      srtt_us_.update(rtt_us);
      min_rtt_us_ = std::min(min_rtt_us_, rtt_us);
    }
    rcv_rate_.on_bytes(
        ev.bytes_delivered > 0 ? ev.bytes_delivered : ev.bytes_acked, ev.now);
    acked_ += static_cast<double>(ev.bytes_acked);
    acked_pkts_ += ev.packets_acked;
    if (ev.ecn) marked_ += ev.packets_acked;
    loss_ += ev.newly_lost_packets;
    inflight_ = static_cast<double>(ev.bytes_in_flight);
    ++acks_since_report_;
    if (ev.newly_lost_packets > 0 && !urgent_since_report_) emit_loss_urgent();
    maybe_report(ev.now);
  }
  void on_loss(const LossEvent& ev) override;
  void on_timeout(const TimeoutEvent& ev) override;
  // Inline: runs per sent packet and is just the estimator's ring write.
  void on_send(const SendEvent& ev) override { snd_rate_.on_bytes(ev.bytes, ev.now); }
  void tick(TimePoint now) override;

  uint64_t cwnd_bytes() const override { return cwnd_bytes_; }
  double pacing_rate_bps() const override { return rate_bps_; }

  void direct_control(const ipc::DirectControlMsg& msg);

  ipc::FlowId id() const { return id_; }
  uint64_t reports_sent() const { return report_seq_; }
  Duration srtt() const {
    return Duration::from_nanos(static_cast<int64_t>(srtt_us_.value() * 1000));
  }

 private:
  /// Fast path inline: in steady state this is one branch per ACK.
  void maybe_report(TimePoint now) {
    if (next_report_ != TimePoint{} && now < next_report_) return;
    maybe_report_slow(now);
  }
  void maybe_report_slow(TimePoint now);
  void emit_report(TimePoint now);
  void emit_loss_urgent();

  ipc::FlowId id_;
  FlowConfig config_;
  MessageSink sink_;

  uint64_t cwnd_bytes_;
  uint64_t cwnd_target_bytes_;
  double rate_bps_ = 0;

  Ewma srtt_us_{0.125};
  double min_rtt_us_ = 1e9;
  RateEstimator snd_rate_;
  RateEstimator rcv_rate_;

  // Counters since the last report (the fixed "fold").
  double acked_ = 0;
  double acked_pkts_ = 0;
  double marked_ = 0;
  double loss_ = 0;
  double timeout_ = 0;
  double inflight_ = 0;

  TimePoint next_report_{};
  uint64_t report_seq_ = 0;
  uint32_t acks_since_report_ = 0;
  bool urgent_since_report_ = false;

  // Reusable outgoing messages (see CcpFlow): reports and urgents mutate
  // these in place so the per-report path allocates nothing.
  ipc::Message report_msg_{ipc::MeasurementMsg{}};
  ipc::Message urgent_msg_{ipc::UrgentMsg{}};
};

/// Container + agent-facing framing for prototype flows.
class PrototypeDatapath {
 public:
  /// Outgoing-frame callback; bytes are borrowed (copy to keep).
  using FrameTx = std::function<void(std::span<const uint8_t>)>;

  PrototypeDatapath(DatapathConfig config, FrameTx tx);

  PrototypeFlow& create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                             TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  /// Per-packet demux; inline so the per-ACK lookup is one probe
  /// sequence with no call overhead.
  PrototypeFlow* flow(ipc::FlowId id) {
    auto* slot = flows_.find(id);
    return slot == nullptr ? nullptr : slot->get();
  }

  /// Accepts DirectControl; counts and drops Install/UpdateFields
  /// (unsupported by this datapath).
  void handle_frame(std::span<const uint8_t> frame, TimePoint now);
  void tick(TimePoint now);

  uint64_t unsupported_msgs() const { return unsupported_msgs_; }
  size_t num_flows() const { return flows_.size(); }

 private:
  void send(const ipc::Message& msg);

  DatapathConfig config_;
  FrameTx tx_;
  util::FlatMap<ipc::FlowId, std::unique_ptr<PrototypeFlow>> flows_;
  ipc::FlowId next_flow_id_ = 1;
  uint64_t unsupported_msgs_ = 0;
  ipc::Encoder send_enc_;                // reused per outgoing frame
  std::vector<ipc::Message> rx_scratch_; // reused per incoming frame
  bool rx_busy_ = false;
};

}  // namespace ccp::datapath
