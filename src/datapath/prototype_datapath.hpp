// The paper's §3 prototype datapath, as a second independent datapath
// implementation:
//
//   "Our datapath implementation currently does not support user-defined
//    measurements, user specification of urgent messages, or either
//    event vectors or general fold functions. Rather, the prototype
//    datapath reports only the most recent ACK and an EWMA-filtered RTT,
//    sending rate, and receiving rate."
//
// It cannot run programs: Install messages are counted and dropped, and
// CreateMsg announces supports_programs = false, so the agent translates
// algorithm decisions into per-report DirectControl commands instead
// (§2.1: "it is also possible to support programs purely by issuing
// commands from the CCP each RTT").
//
// Having two datapaths behind one agent is the "write once, run
// everywhere" claim made executable: the same algorithm objects drive
// both (see bench_datapath_capability and the integration tests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "datapath/cc_module.hpp"
#include "datapath/datapath.hpp"  // DatapathConfig
#include "datapath/flow.hpp"      // FlowConfig, MessageSink
#include "ipc/wire.hpp"
#include "util/ewma.hpp"
#include "util/rate_estimator.hpp"
#include "util/time.hpp"

namespace ccp::datapath {

class PrototypeDatapath;

/// One flow on the prototype datapath. Fixed measurement set, fixed
/// per-RTT report cadence, enforcement only via direct cwnd/rate.
class PrototypeFlow final : public CcModule {
 public:
  PrototypeFlow(ipc::FlowId id, FlowConfig config, MessageSink sink);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_timeout(const TimeoutEvent& ev) override;
  void on_send(const SendEvent& ev) override;
  void tick(TimePoint now) override;

  uint64_t cwnd_bytes() const override { return cwnd_bytes_; }
  double pacing_rate_bps() const override { return rate_bps_; }

  void direct_control(const ipc::DirectControlMsg& msg);

  ipc::FlowId id() const { return id_; }
  uint64_t reports_sent() const { return report_seq_; }
  Duration srtt() const {
    return Duration::from_nanos(static_cast<int64_t>(srtt_us_.value() * 1000));
  }

 private:
  void maybe_report(TimePoint now);
  void emit_report(TimePoint now);

  ipc::FlowId id_;
  FlowConfig config_;
  MessageSink sink_;

  uint64_t cwnd_bytes_;
  uint64_t cwnd_target_bytes_;
  double rate_bps_ = 0;

  Ewma srtt_us_{0.125};
  double min_rtt_us_ = 1e9;
  RateEstimator snd_rate_;
  RateEstimator rcv_rate_;

  // Counters since the last report (the fixed "fold").
  double acked_ = 0;
  double acked_pkts_ = 0;
  double marked_ = 0;
  double loss_ = 0;
  double timeout_ = 0;
  double inflight_ = 0;

  TimePoint next_report_{};
  uint64_t report_seq_ = 0;
  uint32_t acks_since_report_ = 0;
  bool urgent_since_report_ = false;
};

/// Container + agent-facing framing for prototype flows.
class PrototypeDatapath {
 public:
  using FrameTx = std::function<void(std::vector<uint8_t>)>;

  PrototypeDatapath(DatapathConfig config, FrameTx tx);

  PrototypeFlow& create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                             TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  PrototypeFlow* flow(ipc::FlowId id);

  /// Accepts DirectControl; counts and drops Install/UpdateFields
  /// (unsupported by this datapath).
  void handle_frame(std::span<const uint8_t> frame, TimePoint now);
  void tick(TimePoint now);

  uint64_t unsupported_msgs() const { return unsupported_msgs_; }
  size_t num_flows() const { return flows_.size(); }

 private:
  void send(ipc::Message msg);

  DatapathConfig config_;
  FrameTx tx_;
  std::map<ipc::FlowId, std::unique_ptr<PrototypeFlow>> flows_;
  ipc::FlowId next_flow_id_ = 1;
  uint64_t unsupported_msgs_ = 0;
};

}  // namespace ccp::datapath
