// Multi-core sharded datapath: N per-core shards, one control plane.
//
// The paper's scaling argument (§2.3) needs the per-ACK path to scale
// with cores, not just be fast on one. This object partitions the flat
// flow table into per-core Shards keyed by a flow-id hash (shard_of):
// each shard owns its flows' fold state, VM execution, report batching,
// telemetry counters, and IPC lane, so the hot path stays lock-free and
// zero-alloc exactly as in the single-core datapath.
//
// Data flow:
//
//   shard worker i:  stack events -> shard(i) flows -> lane i frames
//   agent:           multi-lane drain (ingest parallel-ready, one
//                    OnMeasurement serialization point, per the paper's
//                    one-agent model) -> commands on the control lane
//   control plane:   handle_frame() decodes, compiles Installs ONCE
//                    (lang::compile_text_shared), binds variables, and
//                    publishes typed commands into each owning shard's
//                    SPSC CommandQueue
//   shard worker i:  picks commands up at the next poll() — the
//                    quiescent point between ACK batches (epoch-based
//                    publication; no mutex ever touches the ACK path)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "datapath/shard.hpp"

namespace ccp::datapath {

struct ControlPlaneStats {
  uint64_t frames_received = 0;
  uint64_t commands_routed = 0;
  uint64_t commands_dropped = 0;  // a shard's queue was full
  uint64_t decode_errors = 0;
  uint64_t install_errors = 0;    // program rejected at compile/bind
  uint64_t resyncs = 0;           // ResyncRequests fanned out to shards
};

class ShardedDatapath {
 public:
  using FrameTx = CcpDatapath::FrameTx;

  /// One shard per entry of `lane_txs`; lane i carries shard i's
  /// outgoing frames (see ipc/lanes.hpp for ready-made lane sets).
  ShardedDatapath(const DatapathConfig& config, std::vector<FrameTx> lane_txs,
                  size_t command_queue_capacity = 256);
  ~ShardedDatapath();

  ShardedDatapath(const ShardedDatapath&) = delete;
  ShardedDatapath& operator=(const ShardedDatapath&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  Shard& shard(uint32_t i) { return *shards_[i]; }
  uint32_t shard_of_flow(ipc::FlowId id) const {
    return shard_of(id, num_shards());
  }

  /// Allocates a fresh flow id that routes to `shard` (cold path; the
  /// stack then registers the flow via shard.create_flow on the owning
  /// worker). Thread-safe.
  ipc::FlowId alloc_flow_id(uint32_t shard);

  /// Control plane: decodes one agent frame and routes each command to
  /// its owning shard's queue. Install programs are compiled exactly
  /// once here and shared immutably across every flow on every shard.
  /// Single control thread only (typically the thread draining the
  /// agent->datapath direction of the control lane).
  void handle_frame(std::span<const uint8_t> frame);

  /// Spawns one worker thread per shard running `body(shard)` in a loop
  /// until stop_workers(). `body` owns the shard for its whole run: it
  /// processes stack events and must call shard.poll(now) regularly so
  /// published commands get applied. Embedders with their own threading
  /// (the bench, a real stack) skip this and drive shards directly.
  void start_workers(std::function<void(Shard&)> body);
  void stop_workers();
  bool workers_running() const { return !workers_.empty(); }

  const ControlPlaneStats& control_stats() const { return stats_; }

  /// Sums per-shard datapath stats. Shard stats are owner-thread plain
  /// counters — only call this while workers are stopped/quiescent.
  DatapathStats aggregate_stats() const;
  size_t total_flows() const;

 private:
  void route(uint32_t shard_index, ShardCommand cmd);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint32_t> next_flow_id_{1};

  // Control-plane decode scratch (single control thread).
  std::vector<ipc::Message> rx_scratch_;
  ControlPlaneStats stats_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stop_workers_{false};
};

}  // namespace ccp::datapath
