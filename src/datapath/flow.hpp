// Per-flow CCP datapath state machine.
//
// This is the paper's "modification to the datapath" (§2): it enforces
// the congestion window and pacing rate received from the agent, gathers
// per-ACK statistics, folds them through the installed program, executes
// the control program's Rate/Cwnd/Wait/WaitRtts/Report sequence in the
// datapath itself, and emits batched Measurement and immediate Urgent
// messages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "datapath/cc_module.hpp"
#include "datapath/events.hpp"
#include "ipc/message.hpp"
#include "lang/compiler.hpp"
#include "lang/vm.hpp"
#include "util/ewma.hpp"
#include "util/rate_estimator.hpp"
#include "util/time.hpp"

namespace ccp::telemetry {
struct ProfSample;  // per-stage cycle profiler (telemetry/profiler.hpp)
}

namespace ccp::datapath {

/// Configuration for one flow.
struct FlowConfig {
  uint32_t mss = 1500;
  uint64_t init_cwnd_bytes = 10 * 1500;  // RFC 6928 initial window
  uint64_t min_cwnd_bytes = 2 * 1500;
  uint64_t max_cwnd_bytes = 1ULL << 30;
  Duration rate_window = Duration::from_millis(100);  // rate estimator horizon
  Duration default_report_interval = Duration::from_millis(10);  // pre-RTT fallback

  /// Smooth congestion window transitions (§3 future work, implemented):
  /// a cwnd *increase* from the agent becomes a target that the datapath
  /// approaches ACK-clocked (cwnd += bytes_acked per ACK, i.e. at most
  /// doubling per RTT), instead of a single burst-inducing jump.
  /// Decreases always apply immediately. The ablation bench
  /// (bench_ablation_smoothing) quantifies what this buys.
  bool smooth_cwnd = true;

  /// Safety watchdog (§5 "Is CCP safe to deploy?"): if the agent goes
  /// silent for this long while a non-default program is installed, the
  /// datapath falls back to a self-contained NewReno-style program that
  /// needs no agent at all (the fold registers run the whole control law
  /// — §5's "synthesize the congestion controller into the datapath").
  /// Zero disables the fixed-duration form of the watchdog.
  Duration agent_timeout = Duration::zero();

  /// RTT-relative watchdog threshold: the agent is stale after
  /// `watchdog_rtts` smoothed RTTs with no install/update/control from
  /// it. Scales naturally across fast LAN and slow WAN flows where a
  /// fixed agent_timeout cannot. Zero disables. When both knobs are set
  /// the flow must exceed *both* before falling back (the fixed timeout
  /// acts as a floor for very-short-RTT flows).
  double watchdog_rtts = 0;

  /// Vector mode (§2.4) memory bound: at most this many per-ACK samples
  /// are buffered between reports. A slow agent cannot make the datapath
  /// grow without bound — past the cap, new samples are dropped and the
  /// report goes out truncated (num_acks_folded still counts every ACK,
  /// so the agent can tell samples are missing).
  size_t max_vector_samples = 16384;

  /// Rate-estimator ring capacity, in events (rounded to a power of
  /// two). Two rings per flow make this the dominant per-flow footprint:
  /// 512 entries is ~24 KB/flow — fine for dozens of hot flows, ~24 GB
  /// at a million resident. Million-flow configurations shrink it (the
  /// anchor fallback keeps estimates graceful; see util/rate_estimator).
  size_t rate_ring_entries = RateEstimator::kDefaultCapacity;
};

/// Sink for messages the flow wants delivered to the agent. `urgent`
/// requests immediate flush (bypassing the batcher). The message is
/// borrowed: the sink must encode/copy before returning (flows reuse one
/// scratch message per kind across calls — the zero-alloc report path).
using MessageSink = std::function<void(const ipc::Message&, bool urgent)>;

/// The flow state the per-ACK path actually touches, split out of CcpFlow
/// so it packs into ~two cache lines regardless of how much cold
/// configuration/resync state the flow carries. The cross-flow batch
/// runner (datapath/ack_batch.cc) leans on this: a wave of ACKs walks one
/// hot block + PktInfo per flow instead of dragging whole CcpFlow objects
/// (rate-estimator rings included) through cache.
struct FlowHot {
  // Enforcement state (primitives (1) and (2) of §2.1).
  uint64_t cwnd_bytes = 0;
  uint64_t cwnd_target_bytes = 0;  // smooth-transition target (== cwnd if off)
  double rate_bps = 0;

  // Measurement state (primitive (3)). tuned_srtt_us remembers the srtt
  // at the last rate-window retune so the retune can be skipped until the
  // estimate actually moves (see CcpFlow::tune_rate_windows).
  Ewma srtt_us{0.125};  // RFC 6298 gain
  double tuned_srtt_us = 0;

  // Control / report cadence.
  bool waiting = false;
  bool urgent_since_report = false;  // damping: one urgent per interval
  bool vector_mode = false;          // §2.4 vector-of-measurements reporting
  TimePoint wait_until{};
  TimePoint watchdog_deadline = TimePoint::max();  // max() = disarmed
  uint32_t acks_since_report = 0;
  uint64_t acks_folded_total = 0;
  // ACKs measured on this flow, ever (plain increment in measure_ack).
  // The global ccp_dp_acks_total counter is fed from deltas of this at
  // report/tick/close time — one atomic RMW per interval instead of a
  // lock-prefixed add on every ACK of the hot path.
  uint64_t acks_seen = 0;

  // Id of the batch wave that last claimed this flow: a second ACK for
  // the same flow inside one burst must not share a wave (its fold reads
  // the first ACK's writes), so the runner flushes on a repeat.
  uint64_t batch_epoch = 0;

  // Cached batch execution class (see BatchExec). Recomputed on every
  // install and vector-mode switch — the only transitions that change
  // it — so the batch runner classifies a lane with one byte load plus
  // the per-ACK gates (watchdog deadline, profiler sampling).
  BatchExec exec_class = BatchExec::Peel;
};

class CcpFlow final : public CcModule {
 public:
  /// `hot` points this flow's per-ACK block into the owning FlowTable's
  /// hot slab (stable for the slot's lifetime). Null — standalone flows,
  /// tests — makes the flow own a private block instead; behavior is
  /// identical either way.
  CcpFlow(ipc::FlowId id, FlowConfig config, MessageSink sink,
          FlowHot* hot = nullptr);
  ~CcpFlow() override;

  /// Re-initializes a parked (closed, slot-recycled) flow as a brand-new
  /// flow `id` — the storage-reuse twin of the constructor. Every
  /// internal buffer (estimator rings, fold state, vector samples,
  /// report scratch) keeps its capacity, so steady-state close->create
  /// churn allocates nothing. The caller must have park()ed the flow.
  void reset_for_reuse(ipc::FlowId id, const FlowConfig& config);

  /// Settles telemetry for a flow leaving service without destruction
  /// (the FlowTable parks closed flows for recycling): releases the
  /// in-fallback gauge the destructor would otherwise settle.
  void park();

  // --- stack-facing API (the datapath contract, §2.1) ---

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_timeout(const TimeoutEvent& ev) override;
  // Inline: runs per sent packet and is just the estimator's ring write.
  void on_send(const SendEvent& ev) override { snd_rate_.on_bytes(ev.bytes, ev.now); }

  /// Advances time-based control-program waits even when no ACKs arrive.
  void tick(TimePoint now) override;

  /// Current enforcement values the stack must obey.
  uint64_t cwnd_bytes() const override { return hot_->cwnd_bytes; }
  /// 0 means "no pacing" (window-limited only).
  double pacing_rate_bps() const override { return hot_->rate_bps; }

  // --- agent-facing API ---

  /// Compiles and installs a program. Throws lang::ProgramError on a bad
  /// program (the datapath rejects it; the old program keeps running).
  void install(const ipc::InstallMsg& msg, TimePoint now);
  /// Installs an already-compiled shared program with variables bound
  /// positionally (lang::bind_vars). This is the sharded install path:
  /// the control plane compiles an Install once and every owning shard's
  /// flows swap in the same immutable program at a quiescent point.
  void install_compiled(std::shared_ptr<const lang::CompiledProgram> prog,
                        std::vector<double> var_values, bool vector_mode,
                        TimePoint now);
  void update_fields(const ipc::UpdateFieldsMsg& msg, TimePoint now);
  void direct_control(const ipc::DirectControlMsg& msg, TimePoint now);

  /// Switches between fold reporting and vector-of-measurements
  /// reporting (§2.4). In vector mode the flow records one sample per
  /// ACK and ships the raw vector at Report() time.
  void set_vector_mode(bool enabled) {
    hot_->vector_mode = enabled;
    refresh_batch_exec();
  }
  bool vector_mode() const { return hot_->vector_mode; }

  // --- cross-flow batch execution surface (datapath/ack_batch.cc) ---

  /// First half of on_ack: measurement update, report/fold counters, and
  /// the watchdog gate, leaving the ACK's fields in last_pkt(). The batch
  /// runner calls this for every batch lane at intake, folds whole groups
  /// through one kernel call, then completes each lane with ack_finish().
  /// ack_prepare(ev) + fold + ack_finish(urgent, ev.now) is behaviorally
  /// identical to on_ack(ev).
  void ack_prepare(const AckEvent& ev);
  /// Second half of on_ack: urgent damping/emission and the control gate.
  /// `urgent` is the fold's urgent-register-changed verdict for this ACK.
  void ack_finish(bool urgent, TimePoint now);
  /// Mutable hot block / fold machine / packet view for the runner's
  /// struct-of-arrays gather and scatter.
  FlowHot& hot() { return *hot_; }
  lang::FoldMachine& fold_machine() { return fold_; }
  const lang::PktInfo& last_pkt() const { return last_pkt_; }
  /// Stage-one prefetch: the flow object's own cache lines. Every address
  /// here is `this` plus a compile-time offset — no field is read — so a
  /// completely cold flow costs no stall to prefetch. Covers the lines
  /// holding the pointers/indices that prefetch_for_ack() must *load*
  /// (hot_, the estimator ring heads, the fold state pointer).
  void prefetch_self() const {
    const char* base = reinterpret_cast<const char*>(this);
    __builtin_prefetch(base);        // id_, config_ head
    __builtin_prefetch(base + 64);   // config_ tail, sink_, hot_ pointer
    // PktInfo is 15 doubles — it straddles two lines, and the per-ACK
    // fill writes most of it.
    const char* pkt = reinterpret_cast<const char*>(&last_pkt_);
    __builtin_prefetch(pkt, 1);
    __builtin_prefetch(pkt + sizeof(last_pkt_) - 1, 1);
    __builtin_prefetch(&snd_rate_);
    __builtin_prefetch(&rcv_rate_);
    __builtin_prefetch(&fold_);
    // Control/report tail: run_control's per-ACK gate reads control_pc_,
    // the watchdog flags, and the report watermark — the cycle profiler
    // shows these lines are where a cold flow's report_emit stage pays.
    const char* ctl = reinterpret_cast<const char*>(&control_pc_);
    __builtin_prefetch(ctl, 1);
    __builtin_prefetch(ctl + 64, 1);
  }
  /// Stage-two prefetch: the lines *behind* the flow's pointers — hot
  /// block, both estimator ring write positions, fold state. These
  /// require reading fields of the flow, so the batch runner calls this
  /// only after prefetch_self()'s lines have had a few ACKs' worth of
  /// work to arrive; a cold (Zipf-tail) flow's dependent misses then
  /// overlap earlier lanes instead of serializing in front of its own.
  void prefetch_for_ack() {
    __builtin_prefetch(hot_, 1);
    __builtin_prefetch(snd_rate_.write_pos(), 1);
    __builtin_prefetch(rcv_rate_.write_pos(), 1);
    __builtin_prefetch(fold_.state_data(), 1);
    __builtin_prefetch(fold_.vars_data());
  }

  // --- introspection (tests, tracing) ---

  ipc::FlowId id() const { return id_; }
  const FlowConfig& config() const { return config_; }
  /// True while the watchdog fallback program is driving this flow.
  bool in_fallback() const { return in_fallback_; }
  Duration srtt() const;
  const lang::FoldMachine& fold() const { return fold_; }
  /// True when this flow's per-ACK folds run JIT-compiled native code
  /// (JitMode On or Verify at install time and codegen succeeded).
  bool jit_active() const { return fold_.jit_active(); }
  uint64_t reports_sent() const { return report_seq_; }
  uint64_t acks_folded_total() const { return hot_->acks_folded_total; }

  /// Returns the ACKs measured since the last call and marks them
  /// flushed. The owning datapath drains this into the global
  /// ccp_dp_acks_total counter at tick and flow-close (emit_report also
  /// drains, so the counter is fresh at report cadence); keeping the
  /// per-ACK count a plain per-flow field removes the atomic
  /// read-modify-write from the per-ACK path.
  uint64_t take_unreported_acks() {
    const uint64_t d = hot_->acks_seen - acks_flushed_;
    acks_flushed_ = hot_->acks_seen;
    return d;
  }

 private:
  /// Folds `last_pkt_` (filled in place by the event handlers — no
  /// per-ACK PktInfo copy) and runs urgency/control. `ps` is non-null
  /// only on profiler-sampled ACKs (on_ack decides); the stage stamps it
  /// collects cost one predictable branch each when sampling is off.
  void fold_event(TimePoint now, telemetry::ProfSample* ps = nullptr);
  /// Measurement half of an ACK (cwnd ramp, srtt, delivery rate, packet
  /// view, vector sample) — shared verbatim by on_ack and ack_prepare.
  void measure_ack(const AckEvent& ev);
  /// Per-ACK staleness gate, reduced to a single time compare: the
  /// precise threshold (agent_timeout floor, k smoothed RTTs) is folded
  /// into a cached deadline, recomputed only when the deadline expires —
  /// not per ACK, where the Duration*double srtt math was a measurable
  /// slice of the budget once the JIT shrank the fold itself. A
  /// disarmed watchdog (knobs off, agent never programmed, or already in
  /// fallback) parks the deadline at TimePoint::max(), so armed and
  /// disarmed flows pay the same one branch. The deadline is
  /// conservative (computed from the srtt at arm time): a shrinking RTT
  /// estimate delays fallback by at most one old threshold, and crossing
  /// a deadline while fresh merely re-arms.
  void check_watchdog(TimePoint now) {
    if (now < hot_->watchdog_deadline) return;
    check_watchdog_slow(now);
  }
  void check_watchdog_slow(TimePoint now);
  /// Resyncs the deadline with the armed state after a transition
  /// (install, fallback entry/exit). Epoch forces the next check onto
  /// the slow path, which computes the real deadline; max() disarms.
  void rearm_watchdog() {
    hot_->watchdog_deadline =
        (watchdog_enabled_ && agent_has_programmed_ && !in_fallback_)
            ? TimePoint::epoch()
            : TimePoint::max();
  }
  /// Re-derives hot_->exec_class from the fold machine's install-time
  /// latches. Must run after every fold_.install and vector-mode change.
  void refresh_batch_exec() {
    hot_->exec_class = !fold_.installed() || hot_->vector_mode
                          ? BatchExec::Peel
                      : fold_.jit_verifying() ? BatchExec::Verify
                      : fold_.batch_fn() != nullptr ? BatchExec::Simd
                      : !fold_.jit_active() ? BatchExec::BatchInterp
                                            : BatchExec::PerLane;
  }
  void enter_fallback(TimePoint now);
  void record_fallback_exit(TimePoint now);
  void reinstall_default(TimePoint now);
  void fill_pkt_info(const AckEvent& ev);
  void tune_rate_windows();
  void run_control(TimePoint now);
  void emit_report(TimePoint now);
  void emit_urgent(ipc::UrgentKind kind);
  void set_cwnd(double bytes);
  void set_rate(double bps);
  Duration rtt_or_default() const;

  ipc::FlowId id_;
  FlowConfig config_;
  MessageSink sink_;

  // The per-ACK working set, adjacent by construction: the hot block and
  // the packet view the fold reads.
  // Slab-resident (owned_hot_ null) or privately owned: either way hot_
  // is non-null for the flow's whole life and the per-ACK path is one
  // pointer indirection away from the ~2-line block. Declared before
  // hot_ so the member initializer can fall back to the owned block.
  std::unique_ptr<FlowHot> owned_hot_;
  FlowHot* hot_;
  lang::PktInfo last_pkt_;  // most recent event, for control-arg evaluation

  // Measurement state (primitive (3)), queried behind field gating and a
  // short TTL cache rather than walked per ACK.
  RateEstimator snd_rate_;
  RateEstimator rcv_rate_;

  // Program state. The compiled program is immutable and shared across
  // every flow (on any shard) running the same text; all mutable
  // execution state lives in this flow's FoldMachine.
  std::shared_ptr<const lang::CompiledProgram> program_;
  lang::FoldMachine fold_;
  size_t control_pc_ = 0;
  bool advance_pc_on_resume_ = true;
  uint64_t report_seq_ = 0;
  uint64_t acks_flushed_ = 0;  // watermark for take_unreported_acks()

  // Watchdog state. watchdog_enabled_ caches "either knob is set" so the
  // per-ACK staleness check stays one branch when the watchdog is off.
  bool watchdog_enabled_ = false;
  bool agent_has_programmed_ = false;  // a non-default program is active
  bool in_fallback_ = false;
  TimePoint last_agent_contact_{};
  TimePoint fallback_entered_{};  // feeds the recovery-time histogram

  // Vector mode (§2.4 first approach).
  std::vector<double> vector_samples_;  // flattened kVectorFieldsPerPkt per ACK

  // Reusable outgoing messages: emit_report()/emit_urgent() mutate these
  // in place and hand them to the sink by reference, so steady-state
  // reporting allocates nothing once field capacities settle.
  ipc::Message report_msg_{ipc::MeasurementMsg{}};
  ipc::Message urgent_msg_{ipc::UrgentMsg{}};

 public:
  /// Per-packet fields recorded in vector mode, in order:
  /// rtt_us, bytes_acked, lost, ecn, snd_rate, rcv_rate.
  static constexpr size_t kVectorFieldsPerPkt = 6;
};

}  // namespace ccp::datapath
