#include "datapath/flow.hpp"

#include <algorithm>

#include "lang/error.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {
namespace {

/// The program a flow runs before the agent installs anything: report the
/// standard statistics once per RTT. This mirrors the paper's §3
/// prototype datapath, which "reports only the most recent ACK and an
/// EWMA-filtered RTT, sending rate, and receiving rate".
constexpr const char* kDefaultProgram = R"(
fold {
  volatile acked   := acked + Pkt.bytes_acked          init 0;
  rtt              := ewma(rtt, Pkt.rtt, 0.125)        init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  snd              := Pkt.snd_rate                     init 0;
  rcv              := Pkt.rcv_rate                     init 0;
  volatile loss    := loss + Pkt.lost                  init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout)    init 0 urgent;
  volatile ecn     := ecn + Pkt.ecn                    init 0;
  inflight         := Pkt.bytes_in_flight              init 0;
}
control {
  WaitRtts(1.0);
  Report();
}
)";

/// Watchdog fallback (§5): complete NewReno-style congestion control
/// expressed in the fold language, needing no agent round trips at all.
/// `ssthresh` is declared before `win`, so its halving reads the
/// pre-update window while `win`'s loss branch reads the freshly-halved
/// ssthresh (registers update in declaration order; docs/LANGUAGE.md).
/// Below ssthresh the window grows per ACK (slow start); above it,
/// additively (~one MSS per window). Loss sets win to the halved
/// ssthresh; an RTO collapses to two segments. The control block applies
/// the window once per RTT.
constexpr const char* kFallbackProgram = R"(
fold {
  ssthresh := if(Pkt.was_timeout + Pkt.lost > 0,
                 max(win * 0.5, 2 * Pkt.mss),
                 ssthresh)
              init $ssthresh;
  win := if(Pkt.was_timeout > 0,
            2 * Pkt.mss,
            if(Pkt.lost > 0,
               ssthresh,
               if(win < ssthresh,
                  win + Pkt.bytes_acked,
                  win + Pkt.bytes_acked * Pkt.mss / win)))
         init $init_cwnd;
  volatile loss := loss + Pkt.lost init 0;
  rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
}
control {
  Cwnd(win);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace

CcpFlow::CcpFlow(ipc::FlowId id, FlowConfig config, MessageSink sink)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      cwnd_bytes_(config.init_cwnd_bytes),
      cwnd_target_bytes_(config.init_cwnd_bytes),
      snd_rate_(config.rate_window),
      rcv_rate_(config.rate_window) {
  // Shared across every flow: the default program is compiled exactly
  // once per process, not once per flow.
  program_ = lang::compile_text_shared(kDefaultProgram);
  fold_.install(program_.get(), {});
  watchdog_enabled_ =
      !config_.agent_timeout.is_zero() || config_.watchdog_rtts > 0;
}

CcpFlow::~CcpFlow() {
  // A flow closed while in fallback must not leak the gauge.
  if (in_fallback_ && telemetry::enabled()) {
    telemetry::metrics().flows_in_fallback.sub(1);
  }
}

Duration CcpFlow::srtt() const {
  return Duration::from_nanos(static_cast<int64_t>(srtt_us_.value() * 1000.0));
}

Duration CcpFlow::rtt_or_default() const {
  if (srtt_us_.initialized() && srtt_us_.value() > 0) return srtt();
  return config_.default_report_interval;
}

// Delivery/sending rates are most meaningful over roughly one RTT
// (BBR-style delivery rate sampling). Called right before the estimators
// are queried — not per ACK, where the double->Duration conversion was
// measurable overhead for programs that never read the rates.
void CcpFlow::tune_rate_windows() {
  if (!srtt_us_.initialized()) return;
  const Duration window = std::max(srtt(), Duration::from_millis(1));
  snd_rate_.set_window(window);
  rcv_rate_.set_window(window);
}

// Writes the ACK's measurements straight into last_pkt_ rather than
// returning a PktInfo by value: the struct is 15 doubles, and building a
// local then copying it into last_pkt_ was a measurable slice of the
// per-ACK budget.
void CcpFlow::fill_pkt_info(const AckEvent& ev) {
  lang::PktInfo& pkt = last_pkt_;
  pkt.rtt_us = ev.rtt_sample.is_zero()
                   ? srtt_us_.value()
                   : static_cast<double>(ev.rtt_sample.micros());
  pkt.bytes_acked = static_cast<double>(ev.bytes_acked);
  pkt.packets_acked = static_cast<double>(ev.packets_acked);
  pkt.lost_packets = static_cast<double>(ev.newly_lost_packets);
  pkt.ecn = ev.ecn ? 1.0 : 0.0;
  pkt.was_timeout = 0.0;
  // Windowed rate queries walk the estimator ring to expire old events;
  // skip them when nothing downstream looks at the result (the installed
  // program — control args included — doesn't read the field and vector
  // samples are off). Zero matches what a fresh PktInfo would carry.
  // The horizon retune (roughly one RTT, BBR-style delivery rate
  // sampling) also lives here, on the queried path only.
  const bool want_snd = vector_mode_ || program_ == nullptr ||
                        program_->reads_pkt_field(lang::PktField::SndRateBps);
  const bool want_rcv = vector_mode_ || program_ == nullptr ||
                        program_->reads_pkt_field(lang::PktField::RcvRateBps);
  if (want_snd || want_rcv) tune_rate_windows();
  pkt.snd_rate_bps = want_snd ? snd_rate_.rate_bps(ev.now) : 0.0;
  pkt.rcv_rate_bps = want_rcv ? rcv_rate_.rate_bps(ev.now) : 0.0;
  pkt.bytes_in_flight = static_cast<double>(ev.bytes_in_flight);
  pkt.packets_in_flight = static_cast<double>(ev.packets_in_flight);
  pkt.bytes_pending = static_cast<double>(ev.bytes_pending);
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(cwnd_bytes_);
  pkt.rate_bps = rate_bps_;
}

void CcpFlow::on_ack(const AckEvent& ev) {
  // Cycle-profiler gate: one relaxed load; when sampling is on, every
  // (mask+1)th ACK of this flow collects per-stage rdtsc stamps on the
  // stack (zero-alloc) and commits them in one cold call at fold_event
  // exit. ACK accounting is genuinely per ACK (the old per-batch delta
  // counting is ccp_dp_report_batches_total's job now).
  telemetry::ProfSample prof;
  telemetry::ProfSample* ps = nullptr;
  if (telemetry::enabled()) {
    telemetry::metrics().dp_acks.inc();
    const uint32_t mask = telemetry::profile_sample_mask();
    if (mask != 0 &&
        (static_cast<uint32_t>(acks_folded_total_) & mask) == 0) [[unlikely]] {
      ps = &prof;
      prof.entry = telemetry::prof_cycles();
    }
  }
  if (config_.smooth_cwnd && cwnd_target_bytes_ > cwnd_bytes_) {
    // Open the window by at most the bytes this ACK freed: the ramp is
    // ACK-clocked, so the instantaneous send rate never exceeds 2x the
    // bottleneck (classic slow-start pacing, never a window-sized burst).
    cwnd_bytes_ = std::min(cwnd_target_bytes_, cwnd_bytes_ + ev.bytes_acked);
  }
  if (!ev.rtt_sample.is_zero()) {
    const double rtt_us = static_cast<double>(ev.rtt_sample.micros());
    srtt_us_.update(rtt_us);
    min_rtt_us_.update(rtt_us, ev.now);
  }
  rcv_rate_.on_bytes(ev.bytes_delivered > 0 ? ev.bytes_delivered : ev.bytes_acked,
                     ev.now);

  fill_pkt_info(ev);
  if (vector_mode_ &&
      vector_samples_.size() <
          config_.max_vector_samples * kVectorFieldsPerPkt) {
    const lang::PktInfo& pkt = last_pkt_;
    vector_samples_.insert(vector_samples_.end(),
                           {pkt.rtt_us, pkt.bytes_acked, pkt.lost_packets, pkt.ecn,
                            pkt.snd_rate_bps, pkt.rcv_rate_bps});
  }
  if (ps) ps->measure = telemetry::prof_cycles();
  fold_event(ev.now, ps);
}

void CcpFlow::on_loss(const LossEvent& ev) {
  if (telemetry::enabled()) telemetry::metrics().dp_loss_events.inc();
  lang::PktInfo pkt;
  pkt.rtt_us = srtt_us_.value();
  pkt.lost_packets = static_cast<double>(ev.lost_packets);
  tune_rate_windows();
  pkt.snd_rate_bps = snd_rate_.rate_bps(ev.now);
  pkt.rcv_rate_bps = rcv_rate_.rate_bps(ev.now);
  pkt.bytes_in_flight = static_cast<double>(ev.bytes_in_flight);
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(cwnd_bytes_);
  pkt.rate_bps = rate_bps_;
  last_pkt_ = pkt;
  fold_event(ev.now);
}

void CcpFlow::on_timeout(const TimeoutEvent& ev) {
  if (telemetry::enabled()) telemetry::metrics().dp_timeouts.inc();
  lang::PktInfo pkt;
  pkt.rtt_us = srtt_us_.value();
  pkt.was_timeout = 1.0;
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(cwnd_bytes_);
  pkt.rate_bps = rate_bps_;
  last_pkt_ = pkt;
  fold_event(ev.now);
}

void CcpFlow::fold_event(TimePoint now, telemetry::ProfSample* ps) {
  const lang::PktInfo& pkt = last_pkt_;
  ++acks_since_report_;
  ++acks_folded_total_;
  check_watchdog(now);
  if (ps) ps->watchdog = telemetry::prof_cycles();
  const bool urgent = fold_.on_packet(pkt);
  if (ps) ps->fold = telemetry::prof_cycles();
  // Damping: at most one urgent notification per report interval. During
  // a large loss episode every ACK can mark new losses; the agent only
  // needs to hear about the episode once per control period (its own
  // response cadence, §2.3), not once per ACK.
  if (urgent && !urgent_since_report_) {
    urgent_since_report_ = true;
    emit_urgent(pkt.was_timeout != 0.0  ? ipc::UrgentKind::Timeout
                : pkt.lost_packets > 0  ? ipc::UrgentKind::Loss
                : pkt.ecn != 0.0        ? ipc::UrgentKind::Ecn
                                        : ipc::UrgentKind::FoldUrgent);
  }
  // Steady-state fast path: while a control wait is pending, run_control
  // would return immediately — skip the call.
  if (!waiting_ || now >= wait_until_) run_control(now);
  if (ps) {
    ps->done = telemetry::prof_cycles();
    telemetry::prof_commit(*ps, fold_.jit_active());
  }
}

void CcpFlow::tick(TimePoint now) {
  check_watchdog(now);
  run_control(now);
}

void CcpFlow::check_watchdog_slow(TimePoint now) {
  // Self-heal after a state transition that left an expired deadline
  // behind: a disarmed flow parks at max() and never comes back here.
  if (!watchdog_enabled_ || !agent_has_programmed_ || in_fallback_) {
    watchdog_deadline_ = TimePoint::max();
    return;
  }
  // Stale only past *both* thresholds: the fixed agent_timeout (zero =
  // always exceeded) and watchdog_rtts smoothed RTTs (unset = skipped).
  const Duration idle = now - last_agent_contact_;
  Duration threshold = config_.agent_timeout;
  if (config_.watchdog_rtts > 0) {
    threshold = std::max(threshold, rtt_or_default() * config_.watchdog_rtts);
  }
  if (idle <= threshold) {
    // Not stale: re-arm the fast-path deadline with the current srtt.
    // Agent contact after this leaves the deadline conservatively early;
    // the next crossing just lands here again and re-arms.
    watchdog_deadline_ = last_agent_contact_ + threshold;
    return;
  }
  CCP_WARN("flow %u: agent silent for %lld ms; engaging datapath fallback",
           id_, static_cast<long long>(idle.millis()));
  if (telemetry::enabled()) telemetry::metrics().dp_fallbacks.inc();
  telemetry::trace(telemetry::TraceKind::Fallback, id_, 0.0);
  enter_fallback(now);
}

void CcpFlow::enter_fallback(TimePoint now) {
  ipc::InstallMsg msg;
  msg.flow_id = id_;
  msg.program_text = kFallbackProgram;
  msg.var_names = {"init_cwnd", "ssthresh"};
  // Resume conservatively from half the current window, in congestion
  // avoidance (win == ssthresh).
  const double half = std::max(static_cast<double>(cwnd_bytes_) / 2.0,
                               2.0 * config_.mss);
  msg.var_values = {half, half};
  install(msg, now);
  // install() clears the fallback/agent state; restore the flag so the
  // agent reclaims the flow on its next command.
  in_fallback_ = true;
  agent_has_programmed_ = false;
  fallback_entered_ = now;
  if (telemetry::enabled()) telemetry::metrics().flows_in_fallback.add(1);
}

void CcpFlow::record_fallback_exit(TimePoint now) {
  in_fallback_ = false;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_fallback_recoveries.inc();
    m.flows_in_fallback.sub(1);
    const int64_t ns = (now - fallback_entered_).nanos();
    m.fallback_recovery_ns.record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }
  telemetry::trace(telemetry::TraceKind::FallbackExit, id_,
                   static_cast<double>(cwnd_bytes_));
}

void CcpFlow::reinstall_default(TimePoint now) {
  install_compiled(lang::compile_text_shared(kDefaultProgram), {},
                   /*vector_mode=*/false, now);
}

void CcpFlow::run_control(TimePoint now) {
  if (program_ == nullptr || program_->control_ops.empty()) return;
  if (waiting_) {
    if (now < wait_until_) return;
    waiting_ = false;
    if (advance_pc_on_resume_) {
      ++control_pc_;
      if (control_pc_ >= program_->control_ops.size()) control_pc_ = 0;
    }
  }

  // Execute until we hit a Wait. A full loop without any Wait means the
  // program gave no cadence; impose one RTT so it cannot spin (the paper's
  // natural control timescale, §2.3).
  size_t executed = 0;
  const size_t n = program_->control_ops.size();
  while (!waiting_) {
    if (executed++ >= n) {
      waiting_ = true;
      advance_pc_on_resume_ = false;  // resume from this pc, don't skip it
      wait_until_ = now + rtt_or_default();
      return;
    }
    const auto op = program_->control_ops[control_pc_];
    switch (op) {
      case lang::ControlInstr::Op::SetRate:
        set_rate(fold_.eval_control_arg(control_pc_, last_pkt_));
        break;
      case lang::ControlInstr::Op::SetCwnd:
        set_cwnd(fold_.eval_control_arg(control_pc_, last_pkt_));
        break;
      case lang::ControlInstr::Op::Wait: {
        const double us = fold_.eval_control_arg(control_pc_, last_pkt_);
        waiting_ = true;
        advance_pc_on_resume_ = true;
        wait_until_ =
            now + Duration::from_nanos(static_cast<int64_t>(std::max(0.0, us) * 1000));
        return;  // pc advances when the wait expires
      }
      case lang::ControlInstr::Op::WaitRtts: {
        const double rtts = fold_.eval_control_arg(control_pc_, last_pkt_);
        waiting_ = true;
        advance_pc_on_resume_ = true;
        wait_until_ = now + rtt_or_default() * std::max(0.0, rtts);
        return;
      }
      case lang::ControlInstr::Op::Report:
        emit_report(now);
        break;
    }
    ++control_pc_;
    if (control_pc_ >= n) control_pc_ = 0;
  }
}

void CcpFlow::emit_report(TimePoint now) {
  (void)now;
  auto& msg = std::get<ipc::MeasurementMsg>(report_msg_);
  msg.flow_id = id_;
  msg.report_seq = report_seq_++;
  msg.num_acks_folded = acks_since_report_;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_reports.inc();
    m.dp_report_batches.inc();
    msg.emitted_ns = telemetry::now_ns();
    // Open a control-loop span: the agent echoes the id (and our emit
    // time) onto whatever command this report provokes, and the span
    // closes where that command is applied.
    msg.span_id = telemetry::next_span_id();
    telemetry::trace(telemetry::TraceKind::Report, id_,
                     static_cast<double>(msg.report_seq));
  } else {
    msg.emitted_ns = 0;
    msg.span_id = 0;
  }
  if (vector_mode_) {
    msg.is_vector = true;
    // Copy instead of move: vector_samples_ keeps its capacity, so the
    // next interval's samples append without reallocating. Grow the
    // destination geometrically (assign alone grows exactly-to-size, so
    // every slightly-longer interval would reallocate forever).
    if (msg.fields.capacity() < vector_samples_.size()) {
      msg.fields.reserve(
          std::max(vector_samples_.size(), 2 * msg.fields.capacity()));
    }
    msg.fields.assign(vector_samples_.begin(), vector_samples_.end());
    vector_samples_.clear();
  } else {
    msg.is_vector = false;
    const auto& st = fold_.state();
    msg.fields.assign(st.begin(), st.end());
  }
  sink_(report_msg_, /*urgent=*/false);
  fold_.reset_volatile();
  acks_since_report_ = 0;
  urgent_since_report_ = false;
}

void CcpFlow::emit_urgent(ipc::UrgentKind kind) {
  auto& msg = std::get<ipc::UrgentMsg>(urgent_msg_);
  msg.flow_id = id_;
  msg.kind = kind;
  const auto& st = fold_.state();
  msg.fields.assign(st.begin(), st.end());
  if (telemetry::enabled()) {
    telemetry::metrics().dp_urgents.inc();
    msg.emitted_ns = telemetry::now_ns();
    msg.span_id = telemetry::next_span_id();
    telemetry::trace(telemetry::TraceKind::Urgent, id_,
                     static_cast<double>(static_cast<uint8_t>(kind)));
  } else {
    msg.emitted_ns = 0;
    msg.span_id = 0;
  }
  sink_(urgent_msg_, /*urgent=*/true);
}

void CcpFlow::set_cwnd(double bytes) {
  const double clamped =
      std::clamp(bytes, static_cast<double>(config_.min_cwnd_bytes),
                 static_cast<double>(config_.max_cwnd_bytes));
  const uint64_t target = static_cast<uint64_t>(clamped);
  telemetry::trace(telemetry::TraceKind::SetCwnd, id_, clamped);
  cwnd_target_bytes_ = target;
  if (!config_.smooth_cwnd || target <= cwnd_bytes_) {
    // Decreases (and everything when smoothing is off) apply immediately.
    cwnd_bytes_ = target;
  }
  // Increases ramp ACK-clocked in on_ack() (§3: "smooth congestion
  // window transitions in the datapath to avoid packet bursts").
}

void CcpFlow::set_rate(double bps) {
  rate_bps_ = std::max(0.0, bps);
  telemetry::trace(telemetry::TraceKind::SetRate, id_, rate_bps_);
}

void CcpFlow::install(const ipc::InstallMsg& msg, TimePoint now) {
  // Compile first: if the program is malformed we throw and the previous
  // program keeps running (§5 safety: a bad Install cannot brick a flow).
  // The shared cache means re-installs of a known text never recompile.
  auto compiled = lang::compile_text_shared(msg.program_text);
  // Bind variables by name so callers can pass them in any order.
  auto var_values = lang::bind_vars(*compiled, msg.var_names, msg.var_values);
  install_compiled(std::move(compiled), std::move(var_values), msg.vector_mode,
                   now);
}

void CcpFlow::install_compiled(std::shared_ptr<const lang::CompiledProgram> prog,
                               std::vector<double> var_values, bool vector_mode,
                               TimePoint now) {
  const uint64_t t0 = telemetry::enabled() ? telemetry::now_ns() : 0;
  program_ = std::move(prog);
  fold_.install(program_.get(), std::move(var_values));
  control_pc_ = 0;
  waiting_ = false;
  acks_since_report_ = 0;
  vector_mode_ = vector_mode;
  vector_samples_.clear();
  if (vector_mode_) {
    // Pre-size for a typical report interval so early ACKs do not grow
    // the buffer incrementally; the hard cap still bounds worst case.
    vector_samples_.reserve(
        std::min<size_t>(config_.max_vector_samples, 1024) * kVectorFieldsPerPkt);
  }
  agent_has_programmed_ = true;
  if (in_fallback_) record_fallback_exit(now);
  last_agent_contact_ = now;
  rearm_watchdog();
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_installs.inc();
    if (t0 != 0) m.install_apply_ns.record(telemetry::now_ns() - t0);
    telemetry::trace(telemetry::TraceKind::InstallApplied, id_, 0.0);
  }
  run_control(now);
}

void CcpFlow::update_fields(const ipc::UpdateFieldsMsg& msg, TimePoint now) {
  if (program_ == nullptr) return;
  last_agent_contact_ = now;
  if (in_fallback_) {
    // The agent is back, but its values target the program the fallback
    // replaced — they must not rebind the fallback's own variables. Drop
    // the stale update and hand the flow back to the default program; the
    // agent's next Install restores its control law.
    record_fallback_exit(now);
    reinstall_default(now);
    return;
  }
  if (msg.var_values.size() != program_->num_vars()) {
    // Stale update racing an in-flight Install (the agent swapped
    // programs while this message crossed the IPC boundary): drop it;
    // the agent's next update will match the new program.
    CCP_DEBUG("flow %u: dropping stale update_fields (%zu values, program has %zu)",
              id_, msg.var_values.size(), program_->num_vars());
    return;
  }
  fold_.update_vars(msg.var_values);
}

void CcpFlow::direct_control(const ipc::DirectControlMsg& msg, TimePoint now) {
  last_agent_contact_ = now;
  if (in_fallback_) {
    // Stop the fallback control loop before applying the override —
    // otherwise it would keep rewriting cwnd once per RTT and fight the
    // agent's setting.
    record_fallback_exit(now);
    reinstall_default(now);
  }
  if (msg.cwnd_bytes.has_value()) set_cwnd(*msg.cwnd_bytes);
  if (msg.rate_bps.has_value()) set_rate(*msg.rate_bps);
}

}  // namespace ccp::datapath
