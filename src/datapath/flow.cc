#include "datapath/flow.hpp"

#include <algorithm>

#include "lang/error.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {
namespace {

/// The program a flow runs before the agent installs anything: report the
/// standard statistics once per RTT. This mirrors the paper's §3
/// prototype datapath, which "reports only the most recent ACK and an
/// EWMA-filtered RTT, sending rate, and receiving rate".
constexpr const char* kDefaultProgram = R"(
fold {
  volatile acked   := acked + Pkt.bytes_acked          init 0;
  rtt              := ewma(rtt, Pkt.rtt, 0.125)        init 0;
  minrtt           := if(Pkt.rtt > 0, min(minrtt, Pkt.rtt), minrtt) init 0x7fffffff;
  snd              := Pkt.snd_rate                     init 0;
  rcv              := Pkt.rcv_rate                     init 0;
  volatile loss    := loss + Pkt.lost                  init 0 urgent;
  volatile timeout := max(timeout, Pkt.was_timeout)    init 0 urgent;
  volatile ecn     := ecn + Pkt.ecn                    init 0;
  inflight         := Pkt.bytes_in_flight              init 0;
}
control {
  WaitRtts(1.0);
  Report();
}
)";

/// Watchdog fallback (§5): complete NewReno-style congestion control
/// expressed in the fold language, needing no agent round trips at all.
/// `ssthresh` is declared before `win`, so its halving reads the
/// pre-update window while `win`'s loss branch reads the freshly-halved
/// ssthresh (registers update in declaration order; docs/LANGUAGE.md).
/// Below ssthresh the window grows per ACK (slow start); above it,
/// additively (~one MSS per window). Loss sets win to the halved
/// ssthresh; an RTO collapses to two segments. The control block applies
/// the window once per RTT.
constexpr const char* kFallbackProgram = R"(
fold {
  ssthresh := if(Pkt.was_timeout + Pkt.lost > 0,
                 max(win * 0.5, 2 * Pkt.mss),
                 ssthresh)
              init $ssthresh;
  win := if(Pkt.was_timeout > 0,
            2 * Pkt.mss,
            if(Pkt.lost > 0,
               ssthresh,
               if(win < ssthresh,
                  win + Pkt.bytes_acked,
                  win + Pkt.bytes_acked * Pkt.mss / win)))
         init $init_cwnd;
  volatile loss := loss + Pkt.lost init 0;
  rtt := ewma(rtt, Pkt.rtt, 0.125) init 0;
}
control {
  Cwnd(win);
  WaitRtts(1.0);
  Report();
}
)";

}  // namespace

CcpFlow::CcpFlow(ipc::FlowId id, FlowConfig config, MessageSink sink,
                 FlowHot* hot)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      owned_hot_(hot == nullptr ? std::make_unique<FlowHot>() : nullptr),
      hot_(hot != nullptr ? hot : owned_hot_.get()),
      snd_rate_(config.rate_window, config.rate_ring_entries),
      rcv_rate_(config.rate_window, config.rate_ring_entries) {
  // Slab blocks are recycled across flows; start from a clean block
  // either way (a freshly owned block is already value-initialized).
  *hot_ = FlowHot{};
  hot_->cwnd_bytes = config.init_cwnd_bytes;
  hot_->cwnd_target_bytes = config.init_cwnd_bytes;
  // Shared across every flow: the default program is compiled exactly
  // once per process, not once per flow.
  program_ = lang::compile_text_shared(kDefaultProgram);
  fold_.install(program_.get(), {});
  refresh_batch_exec();
  watchdog_enabled_ =
      !config_.agent_timeout.is_zero() || config_.watchdog_rtts > 0;
}

CcpFlow::~CcpFlow() {
  // A flow closed while in fallback must not leak the gauge.
  if (in_fallback_ && telemetry::enabled()) {
    telemetry::metrics().flows_in_fallback.sub(1);
  }
}

void CcpFlow::park() {
  if (in_fallback_ && telemetry::enabled()) {
    telemetry::metrics().flows_in_fallback.sub(1);
  }
  // Cleared so the destructor (at table teardown) cannot settle the
  // gauge a second time.
  in_fallback_ = false;
}

// Mirrors the constructor field for field, but reuses every heap block
// the parked flow already owns: the estimator rings reinit in place, the
// fold machine re-installs the (process-shared) default program into its
// existing state vectors, and the report/urgent scratch messages keep
// their field capacities. hotpath_alloc_test's steady-churn config pins
// this path at zero allocations.
void CcpFlow::reset_for_reuse(ipc::FlowId id, const FlowConfig& config) {
  id_ = id;
  config_ = config;
  *hot_ = FlowHot{};
  hot_->cwnd_bytes = config.init_cwnd_bytes;
  hot_->cwnd_target_bytes = config.init_cwnd_bytes;
  last_pkt_ = lang::PktInfo{};
  snd_rate_.reinit(config.rate_window, config.rate_ring_entries);
  rcv_rate_.reinit(config.rate_window, config.rate_ring_entries);
  program_ = lang::compile_text_shared(kDefaultProgram);
  fold_.install(program_.get(), {});
  control_pc_ = 0;
  advance_pc_on_resume_ = true;
  report_seq_ = 0;
  acks_flushed_ = 0;
  watchdog_enabled_ =
      !config_.agent_timeout.is_zero() || config_.watchdog_rtts > 0;
  agent_has_programmed_ = false;
  in_fallback_ = false;
  last_agent_contact_ = TimePoint{};
  fallback_entered_ = TimePoint{};
  vector_samples_.clear();
  refresh_batch_exec();
}

Duration CcpFlow::srtt() const {
  return Duration::from_nanos(static_cast<int64_t>(hot_->srtt_us.value() * 1000.0));
}

Duration CcpFlow::rtt_or_default() const {
  if (hot_->srtt_us.initialized() && hot_->srtt_us.value() > 0) return srtt();
  return config_.default_report_interval;
}

// Delivery/sending rates are most meaningful over roughly one RTT
// (BBR-style delivery rate sampling). Called right before the estimators
// are queried — not per ACK, where the double->Duration conversion was
// measurable overhead for programs that never read the rates — and a
// no-op until the smoothed RTT has drifted 3% from the last retune: the
// horizon is a soft "roughly one RTT", and chasing every EWMA wiggle
// with two set_window calls (each invalidating the rate caches) was pure
// overhead on the steady-state path.
void CcpFlow::tune_rate_windows() {
  if (!hot_->srtt_us.initialized()) return;
  const double cur = hot_->srtt_us.value();
  if (cur > hot_->tuned_srtt_us * 0.97 && cur < hot_->tuned_srtt_us * 1.03) {
    return;
  }
  hot_->tuned_srtt_us = cur;
  const Duration window = std::max(srtt(), Duration::from_millis(1));
  snd_rate_.set_window(window);
  rcv_rate_.set_window(window);
}

// Writes the ACK's measurements straight into last_pkt_ rather than
// returning a PktInfo by value: the struct is 15 doubles, and building a
// local then copying it into last_pkt_ was a measurable slice of the
// per-ACK budget.
void CcpFlow::fill_pkt_info(const AckEvent& ev) {
  lang::PktInfo& pkt = last_pkt_;
  pkt.rtt_us = ev.rtt_sample.is_zero()
                   ? hot_->srtt_us.value()
                   : static_cast<double>(ev.rtt_sample.micros());
  pkt.bytes_acked = static_cast<double>(ev.bytes_acked);
  pkt.packets_acked = static_cast<double>(ev.packets_acked);
  pkt.lost_packets = static_cast<double>(ev.newly_lost_packets);
  pkt.ecn = ev.ecn ? 1.0 : 0.0;
  pkt.was_timeout = 0.0;
  // Windowed rate queries walk the estimator ring to expire old events;
  // skip them when nothing downstream looks at the result (the installed
  // program — control args included — doesn't read the field and vector
  // samples are off). Zero matches what a fresh PktInfo would carry.
  // The horizon retune (roughly one RTT, BBR-style delivery rate
  // sampling) also lives here, on the queried path only.
  const bool want_snd = hot_->vector_mode || program_ == nullptr ||
                        program_->reads_pkt_field(lang::PktField::SndRateBps);
  const bool want_rcv = hot_->vector_mode || program_ == nullptr ||
                        program_->reads_pkt_field(lang::PktField::RcvRateBps);
  if (want_snd || want_rcv) tune_rate_windows();
  // TTL-cached (window/8): per-ACK reads tolerate an estimate a fraction
  // of the window stale; loss/timeout and control paths still query the
  // exact-now rate_bps().
  pkt.snd_rate_bps = want_snd ? snd_rate_.rate_bps_cached(ev.now) : 0.0;
  pkt.rcv_rate_bps = want_rcv ? rcv_rate_.rate_bps_cached(ev.now) : 0.0;
  pkt.bytes_in_flight = static_cast<double>(ev.bytes_in_flight);
  pkt.packets_in_flight = static_cast<double>(ev.packets_in_flight);
  pkt.bytes_pending = static_cast<double>(ev.bytes_pending);
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(hot_->cwnd_bytes);
  pkt.rate_bps = hot_->rate_bps;
}

void CcpFlow::measure_ack(const AckEvent& ev) {
  ++hot_->acks_seen;  // plain; drained into ccp_dp_acks_total at flush points
  if (config_.smooth_cwnd && hot_->cwnd_target_bytes > hot_->cwnd_bytes) {
    // Open the window by at most the bytes this ACK freed: the ramp is
    // ACK-clocked, so the instantaneous send rate never exceeds 2x the
    // bottleneck (classic slow-start pacing, never a window-sized burst).
    hot_->cwnd_bytes =
        std::min(hot_->cwnd_target_bytes, hot_->cwnd_bytes + ev.bytes_acked);
  }
  if (!ev.rtt_sample.is_zero()) {
    hot_->srtt_us.update(static_cast<double>(ev.rtt_sample.micros()));
  }
  rcv_rate_.on_bytes(ev.bytes_delivered > 0 ? ev.bytes_delivered : ev.bytes_acked,
                     ev.now);

  fill_pkt_info(ev);
  if (hot_->vector_mode &&
      vector_samples_.size() <
          config_.max_vector_samples * kVectorFieldsPerPkt) {
    const lang::PktInfo& pkt = last_pkt_;
    vector_samples_.insert(vector_samples_.end(),
                           {pkt.rtt_us, pkt.bytes_acked, pkt.lost_packets, pkt.ecn,
                            pkt.snd_rate_bps, pkt.rcv_rate_bps});
  }
}

void CcpFlow::on_ack(const AckEvent& ev) {
  // Cycle-profiler gate: one relaxed load (the profiler's own mask, no
  // enabled() wrapper — sampling is opt-in and off by default, so this
  // is the per-ACK path's only telemetry instruction); when sampling is
  // on, every (mask+1)th ACK of this flow collects per-stage rdtsc
  // stamps on the stack (zero-alloc) and commits them in one cold call
  // at fold_event exit. ACK accounting is per-flow (hot_->acks_seen, a
  // plain store in measure_ack) and drained into the global atomic
  // counter at report/tick/close — no lock-prefixed add per ACK.
  telemetry::ProfSample prof;
  telemetry::ProfSample* ps = nullptr;
  const uint32_t mask = telemetry::profile_sample_mask();
  if (mask != 0 &&
      (static_cast<uint32_t>(hot_->acks_folded_total) & mask) == 0) [[unlikely]] {
    ps = &prof;
    prof.entry = telemetry::prof_cycles();
  }
  measure_ack(ev);
  if (ps) ps->measure = telemetry::prof_cycles();
  fold_event(ev.now, ps);
}

void CcpFlow::ack_prepare(const AckEvent& ev) {
  measure_ack(ev);
  ++hot_->acks_since_report;
  ++hot_->acks_folded_total;
  // The watchdog can swap in the fallback program, so the batch runner
  // groups lanes by program only after prepare. (In practice an expired
  // deadline peels the lane to the scalar path before reaching here —
  // fallback entry emits messages, which only the scalar path may do
  // mid-sequence — so this stays the one-branch fast path.)
  check_watchdog(ev.now);
}

void CcpFlow::ack_finish(bool urgent, TimePoint now) {
  // Damping: at most one urgent notification per report interval. During
  // a large loss episode every ACK can mark new losses; the agent only
  // needs to hear about the episode once per control period (its own
  // response cadence, §2.3), not once per ACK.
  if (urgent && !hot_->urgent_since_report) {
    hot_->urgent_since_report = true;
    emit_urgent(last_pkt_.was_timeout != 0.0  ? ipc::UrgentKind::Timeout
                : last_pkt_.lost_packets > 0  ? ipc::UrgentKind::Loss
                : last_pkt_.ecn != 0.0        ? ipc::UrgentKind::Ecn
                                              : ipc::UrgentKind::FoldUrgent);
  }
  // Steady-state fast path: while a control wait is pending, run_control
  // would return immediately — skip the call.
  if (!hot_->waiting || now >= hot_->wait_until) run_control(now);
}

void CcpFlow::on_loss(const LossEvent& ev) {
  if (telemetry::enabled()) telemetry::metrics().dp_loss_events.inc();
  lang::PktInfo pkt;
  pkt.rtt_us = hot_->srtt_us.value();
  pkt.lost_packets = static_cast<double>(ev.lost_packets);
  tune_rate_windows();
  pkt.snd_rate_bps = snd_rate_.rate_bps(ev.now);
  pkt.rcv_rate_bps = rcv_rate_.rate_bps(ev.now);
  pkt.bytes_in_flight = static_cast<double>(ev.bytes_in_flight);
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(hot_->cwnd_bytes);
  pkt.rate_bps = hot_->rate_bps;
  last_pkt_ = pkt;
  fold_event(ev.now);
}

void CcpFlow::on_timeout(const TimeoutEvent& ev) {
  if (telemetry::enabled()) telemetry::metrics().dp_timeouts.inc();
  lang::PktInfo pkt;
  pkt.rtt_us = hot_->srtt_us.value();
  pkt.was_timeout = 1.0;
  pkt.now_us = static_cast<double>(ev.now.nanos()) / 1000.0;
  pkt.mss = static_cast<double>(config_.mss);
  pkt.cwnd = static_cast<double>(hot_->cwnd_bytes);
  pkt.rate_bps = hot_->rate_bps;
  last_pkt_ = pkt;
  fold_event(ev.now);
}

void CcpFlow::fold_event(TimePoint now, telemetry::ProfSample* ps) {
  ++hot_->acks_since_report;
  ++hot_->acks_folded_total;
  check_watchdog(now);
  if (ps) ps->watchdog = telemetry::prof_cycles();
  const bool urgent = fold_.on_packet(last_pkt_);
  if (ps) ps->fold = telemetry::prof_cycles();
  ack_finish(urgent, now);
  if (ps) {
    ps->done = telemetry::prof_cycles();
    telemetry::prof_commit(*ps, fold_.jit_active());
  }
}

void CcpFlow::tick(TimePoint now) {
  check_watchdog(now);
  run_control(now);
}

void CcpFlow::check_watchdog_slow(TimePoint now) {
  // Self-heal after a state transition that left an expired deadline
  // behind: a disarmed flow parks at max() and never comes back here.
  if (!watchdog_enabled_ || !agent_has_programmed_ || in_fallback_) {
    hot_->watchdog_deadline = TimePoint::max();
    return;
  }
  // Stale only past *both* thresholds: the fixed agent_timeout (zero =
  // always exceeded) and watchdog_rtts smoothed RTTs (unset = skipped).
  const Duration idle = now - last_agent_contact_;
  Duration threshold = config_.agent_timeout;
  if (config_.watchdog_rtts > 0) {
    threshold = std::max(threshold, rtt_or_default() * config_.watchdog_rtts);
  }
  if (idle <= threshold) {
    // Not stale: re-arm the fast-path deadline with the current srtt.
    // Agent contact after this leaves the deadline conservatively early;
    // the next crossing just lands here again and re-arms.
    hot_->watchdog_deadline = last_agent_contact_ + threshold;
    return;
  }
  CCP_WARN("flow %u: agent silent for %lld ms; engaging datapath fallback",
           id_, static_cast<long long>(idle.millis()));
  if (telemetry::enabled()) telemetry::metrics().dp_fallbacks.inc();
  telemetry::trace(telemetry::TraceKind::Fallback, id_, 0.0);
  enter_fallback(now);
}

void CcpFlow::enter_fallback(TimePoint now) {
  ipc::InstallMsg msg;
  msg.flow_id = id_;
  msg.program_text = kFallbackProgram;
  msg.var_names = {"init_cwnd", "ssthresh"};
  // Resume conservatively from half the current window, in congestion
  // avoidance (win == ssthresh).
  const double half = std::max(static_cast<double>(hot_->cwnd_bytes) / 2.0,
                               2.0 * config_.mss);
  msg.var_values = {half, half};
  install(msg, now);
  // install() clears the fallback/agent state; restore the flag so the
  // agent reclaims the flow on its next command.
  in_fallback_ = true;
  agent_has_programmed_ = false;
  fallback_entered_ = now;
  if (telemetry::enabled()) telemetry::metrics().flows_in_fallback.add(1);
}

void CcpFlow::record_fallback_exit(TimePoint now) {
  in_fallback_ = false;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_fallback_recoveries.inc();
    m.flows_in_fallback.sub(1);
    const int64_t ns = (now - fallback_entered_).nanos();
    m.fallback_recovery_ns.record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }
  telemetry::trace(telemetry::TraceKind::FallbackExit, id_,
                   static_cast<double>(hot_->cwnd_bytes));
}

void CcpFlow::reinstall_default(TimePoint now) {
  install_compiled(lang::compile_text_shared(kDefaultProgram), {},
                   /*vector_mode=*/false, now);
}

void CcpFlow::run_control(TimePoint now) {
  if (program_ == nullptr || program_->control_ops.empty()) return;
  if (hot_->waiting) {
    if (now < hot_->wait_until) return;
    hot_->waiting = false;
    if (advance_pc_on_resume_) {
      ++control_pc_;
      if (control_pc_ >= program_->control_ops.size()) control_pc_ = 0;
    }
  }

  // Execute until we hit a Wait. A full loop without any Wait means the
  // program gave no cadence; impose one RTT so it cannot spin (the paper's
  // natural control timescale, §2.3).
  size_t executed = 0;
  const size_t n = program_->control_ops.size();
  while (!hot_->waiting) {
    if (executed++ >= n) {
      hot_->waiting = true;
      advance_pc_on_resume_ = false;  // resume from this pc, don't skip it
      hot_->wait_until = now + rtt_or_default();
      return;
    }
    const auto op = program_->control_ops[control_pc_];
    switch (op) {
      case lang::ControlInstr::Op::SetRate:
        set_rate(fold_.eval_control_arg(control_pc_, last_pkt_));
        break;
      case lang::ControlInstr::Op::SetCwnd:
        set_cwnd(fold_.eval_control_arg(control_pc_, last_pkt_));
        break;
      case lang::ControlInstr::Op::Wait: {
        const double us = fold_.eval_control_arg(control_pc_, last_pkt_);
        hot_->waiting = true;
        advance_pc_on_resume_ = true;
        hot_->wait_until =
            now + Duration::from_nanos(static_cast<int64_t>(std::max(0.0, us) * 1000));
        return;  // pc advances when the wait expires
      }
      case lang::ControlInstr::Op::WaitRtts: {
        const double rtts = fold_.eval_control_arg(control_pc_, last_pkt_);
        hot_->waiting = true;
        advance_pc_on_resume_ = true;
        hot_->wait_until = now + rtt_or_default() * std::max(0.0, rtts);
        return;
      }
      case lang::ControlInstr::Op::Report:
        emit_report(now);
        break;
    }
    ++control_pc_;
    if (control_pc_ >= n) control_pc_ = 0;
  }
}

void CcpFlow::emit_report(TimePoint now) {
  (void)now;
  auto& msg = std::get<ipc::MeasurementMsg>(report_msg_);
  msg.flow_id = id_;
  msg.report_seq = report_seq_++;
  msg.num_acks_folded = hot_->acks_since_report;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_acks.inc(take_unreported_acks());
    m.dp_reports.inc();
    m.dp_report_batches.inc();
    msg.emitted_ns = telemetry::now_ns();
    // Open a control-loop span — only while the flight recorder is
    // actually recording spans: the agent echoes the id (and our emit
    // time) onto whatever command this report provokes, and the span
    // closes where that command is applied. With recording off the id
    // stays 0 and every downstream hop skips its stamps and histograms.
    msg.span_id = telemetry::spans_active() ? telemetry::next_span_id() : 0;
    telemetry::trace(telemetry::TraceKind::Report, id_,
                     static_cast<double>(msg.report_seq));
  } else {
    msg.emitted_ns = 0;
    msg.span_id = 0;
  }
  if (hot_->vector_mode) {
    msg.is_vector = true;
    // Copy instead of move: vector_samples_ keeps its capacity, so the
    // next interval's samples append without reallocating. Grow the
    // destination geometrically (assign alone grows exactly-to-size, so
    // every slightly-longer interval would reallocate forever).
    if (msg.fields.capacity() < vector_samples_.size()) {
      msg.fields.reserve(
          std::max(vector_samples_.size(), 2 * msg.fields.capacity()));
    }
    msg.fields.assign(vector_samples_.begin(), vector_samples_.end());
    vector_samples_.clear();
  } else {
    msg.is_vector = false;
    const auto& st = fold_.state();
    msg.fields.assign(st.begin(), st.end());
  }
  sink_(report_msg_, /*urgent=*/false);
  fold_.reset_volatile();
  hot_->acks_since_report = 0;
  hot_->urgent_since_report = false;
}

void CcpFlow::emit_urgent(ipc::UrgentKind kind) {
  auto& msg = std::get<ipc::UrgentMsg>(urgent_msg_);
  msg.flow_id = id_;
  msg.kind = kind;
  const auto& st = fold_.state();
  msg.fields.assign(st.begin(), st.end());
  if (telemetry::enabled()) {
    telemetry::metrics().dp_urgents.inc();
    msg.emitted_ns = telemetry::now_ns();
    msg.span_id = telemetry::spans_active() ? telemetry::next_span_id() : 0;
    telemetry::trace(telemetry::TraceKind::Urgent, id_,
                     static_cast<double>(static_cast<uint8_t>(kind)));
  } else {
    msg.emitted_ns = 0;
    msg.span_id = 0;
  }
  sink_(urgent_msg_, /*urgent=*/true);
}

void CcpFlow::set_cwnd(double bytes) {
  const double clamped =
      std::clamp(bytes, static_cast<double>(config_.min_cwnd_bytes),
                 static_cast<double>(config_.max_cwnd_bytes));
  const uint64_t target = static_cast<uint64_t>(clamped);
  telemetry::trace(telemetry::TraceKind::SetCwnd, id_, clamped);
  hot_->cwnd_target_bytes = target;
  if (!config_.smooth_cwnd || target <= hot_->cwnd_bytes) {
    // Decreases (and everything when smoothing is off) apply immediately.
    hot_->cwnd_bytes = target;
  }
  // Increases ramp ACK-clocked in on_ack() (§3: "smooth congestion
  // window transitions in the datapath to avoid packet bursts").
}

void CcpFlow::set_rate(double bps) {
  hot_->rate_bps = std::max(0.0, bps);
  telemetry::trace(telemetry::TraceKind::SetRate, id_, hot_->rate_bps);
}

void CcpFlow::install(const ipc::InstallMsg& msg, TimePoint now) {
  // Compile first: if the program is malformed we throw and the previous
  // program keeps running (§5 safety: a bad Install cannot brick a flow).
  // The shared cache means re-installs of a known text never recompile.
  auto compiled = lang::compile_text_shared(msg.program_text);
  // Bind variables by name so callers can pass them in any order.
  auto var_values = lang::bind_vars(*compiled, msg.var_names, msg.var_values);
  install_compiled(std::move(compiled), std::move(var_values), msg.vector_mode,
                   now);
}

void CcpFlow::install_compiled(std::shared_ptr<const lang::CompiledProgram> prog,
                               std::vector<double> var_values, bool vector_mode,
                               TimePoint now) {
  const uint64_t t0 = telemetry::enabled() ? telemetry::now_ns() : 0;
  program_ = std::move(prog);
  fold_.install(program_.get(), std::move(var_values));
  control_pc_ = 0;
  hot_->waiting = false;
  hot_->acks_since_report = 0;
  hot_->vector_mode = vector_mode;
  vector_samples_.clear();
  if (hot_->vector_mode) {
    // Pre-size for a typical report interval so early ACKs do not grow
    // the buffer incrementally; the hard cap still bounds worst case.
    vector_samples_.reserve(
        std::min<size_t>(config_.max_vector_samples, 1024) * kVectorFieldsPerPkt);
  }
  refresh_batch_exec();
  agent_has_programmed_ = true;
  if (in_fallback_) record_fallback_exit(now);
  last_agent_contact_ = now;
  rearm_watchdog();
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_installs.inc();
    if (t0 != 0) m.install_apply_ns.record(telemetry::now_ns() - t0);
    telemetry::trace(telemetry::TraceKind::InstallApplied, id_, 0.0);
  }
  run_control(now);
}

void CcpFlow::update_fields(const ipc::UpdateFieldsMsg& msg, TimePoint now) {
  if (program_ == nullptr) return;
  last_agent_contact_ = now;
  if (in_fallback_) {
    // The agent is back, but its values target the program the fallback
    // replaced — they must not rebind the fallback's own variables. Drop
    // the stale update and hand the flow back to the default program; the
    // agent's next Install restores its control law.
    record_fallback_exit(now);
    reinstall_default(now);
    return;
  }
  if (msg.var_values.size() != program_->num_vars()) {
    // Stale update racing an in-flight Install (the agent swapped
    // programs while this message crossed the IPC boundary): drop it;
    // the agent's next update will match the new program.
    CCP_DEBUG("flow %u: dropping stale update_fields (%zu values, program has %zu)",
              id_, msg.var_values.size(), program_->num_vars());
    return;
  }
  fold_.update_vars(msg.var_values);
}

void CcpFlow::direct_control(const ipc::DirectControlMsg& msg, TimePoint now) {
  last_agent_contact_ = now;
  if (in_fallback_) {
    // Stop the fallback control loop before applying the override —
    // otherwise it would keep rewriting cwnd once per RTT and fight the
    // agent's setting.
    record_fallback_exit(now);
    reinstall_default(now);
  }
  if (msg.cwnd_bytes.has_value()) set_cwnd(*msg.cwnd_bytes);
  if (msg.rate_bps.has_value()) set_rate(*msg.rate_bps);
}

}  // namespace ccp::datapath
