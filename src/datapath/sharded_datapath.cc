#include "datapath/sharded_datapath.hpp"

#include <utility>
#include <variant>

#include "ipc/wire.hpp"
#include "lang/error.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {

ShardedDatapath::ShardedDatapath(const DatapathConfig& config,
                                 std::vector<FrameTx> lane_txs,
                                 size_t command_queue_capacity) {
  shards_.reserve(lane_txs.size());
  for (size_t i = 0; i < lane_txs.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>(static_cast<uint32_t>(i), config,
                                              std::move(lane_txs[i]),
                                              command_queue_capacity));
  }
}

ShardedDatapath::~ShardedDatapath() { stop_workers(); }

ipc::FlowId ShardedDatapath::alloc_flow_id(uint32_t shard) {
  // Expected num_shards() probes: ids are dense, the shard hash is
  // uniform, and this is the cold flow-setup path.
  for (;;) {
    const ipc::FlowId id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
    if (shard_of_flow(id) == shard) return id;
  }
}

void ShardedDatapath::route(uint32_t shard_index, ShardCommand cmd) {
  if (shards_[shard_index]->commands().push(std::move(cmd))) {
    ++stats_.commands_routed;
  } else {
    // The owner has fallen a full queue behind; drop rather than block
    // the control plane (the agent's next command supersedes this one).
    ++stats_.commands_dropped;
    CCP_WARN("sharded datapath: shard %u command queue full, dropping",
             shard_index);
  }
}

void ShardedDatapath::handle_frame(std::span<const uint8_t> frame) {
  ++stats_.frames_received;
  uint64_t prof_c0 = 0;
  if (const uint32_t pmask = telemetry::profile_sample_mask();
      pmask != 0 && telemetry::enabled()) {
    thread_local uint32_t decode_tick = 0;
    if ((++decode_tick & pmask) == 0) [[unlikely]] {
      prof_c0 = telemetry::prof_cycles();
    }
  }
  size_t n_msgs = 0;
  try {
    n_msgs = ipc::decode_frame_into(frame, rx_scratch_);
  } catch (const ipc::WireError& e) {
    ++stats_.decode_errors;
    CCP_WARN("sharded datapath: dropping malformed frame: %s", e.what());
    return;
  }
  if (prof_c0 != 0) {
    telemetry::prof_record(telemetry::ProfStage::Decode,
                           telemetry::prof_cycles() - prof_c0);
  }
  // Spans on the sharded path: "enqueue" is the control plane pushing
  // the decoded command onto the owning shard's queue; the shard closes
  // the span when it applies the command at its next quiescent point.
  const uint64_t enqueue_ns =
      telemetry::spans_active() ? telemetry::now_ns() : 0;
  for (size_t i = 0; i < n_msgs; ++i) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ipc::InstallMsg>) {
            ShardCommand cmd;
            cmd.kind = ShardCommand::Kind::Install;
            cmd.flow_id = m.flow_id;
            cmd.vector_mode = m.vector_mode;
            cmd.span = m.span;
            cmd.enqueue_ns = enqueue_ns;
            try {
              // Compile once, share everywhere: flows on every shard
              // installing this text get the same immutable program.
              cmd.program = lang::compile_text_shared(m.program_text);
              cmd.var_values =
                  lang::bind_vars(*cmd.program, m.var_names, m.var_values);
            } catch (const lang::ProgramError& e) {
              ++stats_.install_errors;
              if (telemetry::enabled()) {
                telemetry::metrics().dp_install_errors.inc();
              }
              CCP_WARN("sharded datapath: rejecting program for flow %u: %s",
                       m.flow_id, e.what());
              return;
            }
            route(shard_of_flow(m.flow_id), std::move(cmd));
          } else if constexpr (std::is_same_v<T, ipc::UpdateFieldsMsg>) {
            ShardCommand cmd;
            cmd.kind = ShardCommand::Kind::UpdateFields;
            cmd.flow_id = m.flow_id;
            cmd.var_values = m.var_values;
            cmd.span = m.span;
            cmd.enqueue_ns = enqueue_ns;
            route(shard_of_flow(m.flow_id), std::move(cmd));
          } else if constexpr (std::is_same_v<T, ipc::DirectControlMsg>) {
            ShardCommand cmd;
            cmd.kind = ShardCommand::Kind::DirectControl;
            cmd.flow_id = m.flow_id;
            cmd.cwnd_bytes = m.cwnd_bytes;
            cmd.rate_bps = m.rate_bps;
            cmd.span = m.span;
            cmd.enqueue_ns = enqueue_ns;
            route(shard_of_flow(m.flow_id), std::move(cmd));
          } else if constexpr (std::is_same_v<T, ipc::ResyncRequestMsg>) {
            // Fan the resync out to every shard; each replays its own
            // flows on its own lane. The SPSC FIFO is the epoch guard:
            // commands published before this request are applied before
            // the replay, so the summaries can never be stale.
            ++stats_.resyncs;
            for (uint32_t s = 0; s < num_shards(); ++s) {
              ShardCommand cmd;
              cmd.kind = ShardCommand::Kind::Resync;
              cmd.resync_token = m.token;
              route(s, std::move(cmd));
            }
          } else {
            CCP_WARN("sharded datapath: unexpected message type %d from agent",
                     static_cast<int>(ipc::message_type(ipc::Message(m))));
          }
        },
        rx_scratch_[i]);
  }
}

void ShardedDatapath::start_workers(std::function<void(Shard&)> body) {
  stop_workers();
  stop_workers_.store(false, std::memory_order_release);
  workers_.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers_.emplace_back([this, body, s = shard.get()] {
      while (!stop_workers_.load(std::memory_order_acquire)) {
        body(*s);
      }
    });
  }
}

void ShardedDatapath::stop_workers() {
  stop_workers_.store(true, std::memory_order_release);
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

DatapathStats ShardedDatapath::aggregate_stats() const {
  DatapathStats total;
  for (const auto& shard : shards_) {
    const DatapathStats& s = shard->stats();
    total.frames_sent += s.frames_sent;
    total.msgs_sent += s.msgs_sent;
    total.bytes_sent += s.bytes_sent;
    total.frames_received += s.frames_received;
    total.msgs_received += s.msgs_received;
    total.decode_errors += s.decode_errors;
    total.install_errors += s.install_errors;
  }
  return total;
}

size_t ShardedDatapath::total_flows() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->num_flows();
  return n;
}

}  // namespace ccp::datapath
