// The CCP datapath object: owns all flows on one host, batches their
// outgoing messages into frames, and dispatches the agent's commands.
//
// Transport-agnostic by design: outgoing frames go through a FrameTx
// callback and incoming frames arrive via handle_frame(). The simulator
// wires these through its event queue (with a modeled IPC delay); real
// deployments wire them to an ipc::Transport (see TransportDriver).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "datapath/ack_batch.hpp"
#include "datapath/flow.hpp"
#include "datapath/flow_table.hpp"
#include "ipc/wire.hpp"
#include "util/time.hpp"

namespace ccp::telemetry {
struct ShardStats;
}  // namespace ccp::telemetry

namespace ccp::datapath {

struct DatapathConfig {
  /// How long batched (non-urgent) messages may sit before a flush.
  /// Zero = send every message in its own frame immediately.
  Duration flush_interval = Duration::zero();
  /// Flush regardless of age once this many messages are pending.
  size_t max_batch_msgs = 64;

  /// Pre-sizes the flow index for this many flows (0 = start small and
  /// grow incrementally through every doubling). Either way the wire
  /// behavior is identical — the incremental rehash is invisible to the
  /// agent — which tests/flow_table_test.cc pins byte for byte.
  size_t expected_flows = 0;
  /// Old-table buckets migrated per on_ack_batch / tick call while an
  /// index grow is draining. Bounds the rehash work any single ACK burst
  /// can observe; the insert-time budget in FlowTable guarantees the
  /// drain completes before the next grow regardless of this knob.
  size_t rehash_step_buckets = 128;
  /// Flows visited per tick() for control-wait/watchdog maintenance.
  /// 0 = every flow, the historical behavior and right for datapaths
  /// with thousands of flows. Million-flow datapaths set a budget: the
  /// sweep cursor round-robins so every flow is still visited within
  /// live/budget ticks, and ACK arrival advances control waits anyway —
  /// a bounded maintenance delay for idle flows, never for active ones.
  size_t tick_flow_budget = 0;
};

struct DatapathStats {
  uint64_t frames_sent = 0;
  uint64_t msgs_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t msgs_received = 0;
  uint64_t decode_errors = 0;
  uint64_t install_errors = 0;
};

class CcpDatapath {
 public:
  /// Outgoing-frame callback. The bytes are borrowed: a receiver that
  /// needs them past the call must copy (transports do; the simulator
  /// copies into its event closure).
  using FrameTx = std::function<void(std::span<const uint8_t>)>;

  CcpDatapath(DatapathConfig config, FrameTx tx);

  /// Registers a flow and announces it to the agent.
  CcpFlow& create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                       TimePoint now);
  /// Same, with a caller-chosen flow id. The sharded datapath allocates
  /// ids centrally so a flow's id determines its owning shard (the way a
  /// real stack's 4-tuple hash determines the processing core).
  CcpFlow& create_flow_with_id(ipc::FlowId id, const FlowConfig& cfg,
                               const std::string& alg_hint, TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  /// Per-packet demux; inline so the per-ACK lookup is one probe
  /// sequence with no call overhead.
  CcpFlow* flow(ipc::FlowId id) { return flows_.find(id); }

  /// Feeds a whole burst of ACKs through the cross-flow batch runner:
  /// behaviorally equivalent to the per-ACK on_send/on_ack sequence in
  /// arrival order (same messages, same bytes), but same-program flows
  /// fold in grouped batch calls — packed SIMD where the program is
  /// eligible. See datapath/ack_batch.hpp for the peeling rules. Each
  /// call also pumps one bounded incremental-rehash step when a flow-
  /// index grow is draining, so table growth never stalls a burst.
  void on_ack_batch(std::span<const FlowAck> burst) {
    if (flows_.rehash_pending()) [[unlikely]] pump_rehash();
    batch_runner_.run(*this, burst);
  }

  /// Feeds one frame from the agent. Malformed frames and bad programs
  /// are counted and dropped — never fatal (§5).
  void handle_frame(std::span<const uint8_t> frame, TimePoint now);

  /// Resync protocol (docs/RESILIENCE.md): replays a FlowSummary for
  /// every active flow so a restarted agent can rebuild its per-flow
  /// state, echoing `token` so the agent can drop superseded replays.
  /// Flushes immediately; returns the number of flows replayed. Also
  /// invoked by handle_frame on a ResyncRequest message.
  size_t replay_flow_summaries(TimePoint now, uint64_t token);

  /// Periodic maintenance: advances every flow's control program and
  /// flushes aged batches. Call at least every flush_interval.
  void tick(TimePoint now);

  /// Sends everything pending now.
  void flush();

  const DatapathStats& stats() const { return stats_; }
  size_t num_flows() const { return flows_.size(); }
  /// The slab-backed flow store (benchmarks and tests read its stats,
  /// handles, and load factor; the churn bench drives its recycling).
  const FlowTable& flow_table() const { return flows_; }
  FlowTable& flow_table() { return flows_; }

  /// Attributes this datapath's report/urgent traffic to a shard's
  /// counter set (sharded mode; see src/datapath/shard.hpp). Accounting
  /// happens per enqueued message — never per ACK — so the hot path cost
  /// is one pointer test on the report path.
  void set_shard_stats(telemetry::ShardStats* stats) { shard_stats_ = stats; }

 private:
  void enqueue(const ipc::Message& msg, bool urgent, TimePoint now);
  /// One bounded incremental-rehash step + the telemetry that goes with
  /// it. Out of line: the callers' fast path is the rehash_pending()
  /// test, false for the table's whole steady state.
  void pump_rehash();
  /// Publishes flow-count / load-factor gauges after create/close.
  void publish_table_gauges();

  DatapathConfig config_;
  FrameTx tx_;
  // Two-tier slab flow storage (hot FlowHot slab + parked-recycled cold
  // CcpFlow slab) behind an incremental-rehash FlowId index. Also owns
  // the interned algorithm-hint pool resync replays read — one pooled
  // string per distinct hint, not a heap string per flow.
  FlowTable flows_;
  ipc::FlowId next_flow_id_ = 1;
  size_t tick_sweep_cursor_ = 0;  // round-robin slot cursor (bounded tick)

  // Outgoing batch: messages are encoded straight into `batch_enc_` as
  // they arrive (frame header first, msg count patched at flush), so a
  // flush is one u16 patch + one buffer swap — no per-flush encode pass
  // and no allocation once capacities settle.
  ipc::Encoder batch_enc_;
  size_t pending_msgs_ = 0;
  std::vector<uint8_t> flush_buf_;  // swapped with the encoder at flush
  TimePoint oldest_pending_{};
  TimePoint last_event_time_{};  // freshest tick time, stamps sink messages
  uint32_t tick_seq_ = 0;        // paces the slow-cadence metric drain

  // Outgoing control-plane scratch messages (create/close/resync),
  // mirrors of the flows' own report/urgent scratch: mutated in place
  // and handed to enqueue by reference, so steady-state churn reuses
  // their string/field capacities instead of allocating per flow event.
  ipc::Message create_msg_{ipc::CreateMsg{}};
  ipc::Message close_msg_{ipc::FlowCloseMsg{}};
  ipc::Message summary_msg_{ipc::FlowSummaryMsg{}};

  // Incoming decode scratch, reused across frames. `rx_busy_` guards
  // against reentrant handle_frame (a synchronously wired agent can loop
  // a response back while we are still iterating): nested calls fall
  // back to a local vector.
  std::vector<ipc::Message> rx_scratch_;
  bool rx_busy_ = false;

  AckBatchRunner batch_runner_;

  DatapathStats stats_;
  telemetry::ShardStats* shard_stats_ = nullptr;  // sharded mode only
};

}  // namespace ccp::datapath
