// The CCP datapath object: owns all flows on one host, batches their
// outgoing messages into frames, and dispatches the agent's commands.
//
// Transport-agnostic by design: outgoing frames go through a FrameTx
// callback and incoming frames arrive via handle_frame(). The simulator
// wires these through its event queue (with a modeled IPC delay); real
// deployments wire them to an ipc::Transport (see TransportDriver).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "datapath/ack_batch.hpp"
#include "datapath/flow.hpp"
#include "ipc/wire.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace ccp::telemetry {
struct ShardStats;
}  // namespace ccp::telemetry

namespace ccp::datapath {

struct DatapathConfig {
  /// How long batched (non-urgent) messages may sit before a flush.
  /// Zero = send every message in its own frame immediately.
  Duration flush_interval = Duration::zero();
  /// Flush regardless of age once this many messages are pending.
  size_t max_batch_msgs = 64;
};

struct DatapathStats {
  uint64_t frames_sent = 0;
  uint64_t msgs_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t msgs_received = 0;
  uint64_t decode_errors = 0;
  uint64_t install_errors = 0;
};

class CcpDatapath {
 public:
  /// Outgoing-frame callback. The bytes are borrowed: a receiver that
  /// needs them past the call must copy (transports do; the simulator
  /// copies into its event closure).
  using FrameTx = std::function<void(std::span<const uint8_t>)>;

  CcpDatapath(DatapathConfig config, FrameTx tx);

  /// Registers a flow and announces it to the agent.
  CcpFlow& create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                       TimePoint now);
  /// Same, with a caller-chosen flow id. The sharded datapath allocates
  /// ids centrally so a flow's id determines its owning shard (the way a
  /// real stack's 4-tuple hash determines the processing core).
  CcpFlow& create_flow_with_id(ipc::FlowId id, const FlowConfig& cfg,
                               const std::string& alg_hint, TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  /// Per-packet demux; inline so the per-ACK lookup is one probe
  /// sequence with no call overhead.
  CcpFlow* flow(ipc::FlowId id) {
    auto* slot = flows_.find(id);
    return slot == nullptr ? nullptr : slot->get();
  }

  /// Feeds a whole burst of ACKs through the cross-flow batch runner:
  /// behaviorally equivalent to the per-ACK on_send/on_ack sequence in
  /// arrival order (same messages, same bytes), but same-program flows
  /// fold in grouped batch calls — packed SIMD where the program is
  /// eligible. See datapath/ack_batch.hpp for the peeling rules.
  void on_ack_batch(std::span<const FlowAck> burst) {
    batch_runner_.run(*this, burst);
  }

  /// Feeds one frame from the agent. Malformed frames and bad programs
  /// are counted and dropped — never fatal (§5).
  void handle_frame(std::span<const uint8_t> frame, TimePoint now);

  /// Resync protocol (docs/RESILIENCE.md): replays a FlowSummary for
  /// every active flow so a restarted agent can rebuild its per-flow
  /// state, echoing `token` so the agent can drop superseded replays.
  /// Flushes immediately; returns the number of flows replayed. Also
  /// invoked by handle_frame on a ResyncRequest message.
  size_t replay_flow_summaries(TimePoint now, uint64_t token);

  /// Periodic maintenance: advances every flow's control program and
  /// flushes aged batches. Call at least every flush_interval.
  void tick(TimePoint now);

  /// Sends everything pending now.
  void flush();

  const DatapathStats& stats() const { return stats_; }
  size_t num_flows() const { return flows_.size(); }

  /// Attributes this datapath's report/urgent traffic to a shard's
  /// counter set (sharded mode; see src/datapath/shard.hpp). Accounting
  /// happens per enqueued message — never per ACK — so the hot path cost
  /// is one pointer test on the report path.
  void set_shard_stats(telemetry::ShardStats* stats) { shard_stats_ = stats; }

 private:
  void enqueue(const ipc::Message& msg, bool urgent, TimePoint now);

  DatapathConfig config_;
  FrameTx tx_;
  util::FlatMap<ipc::FlowId, std::unique_ptr<CcpFlow>> flows_;
  // Each flow's CreateMsg alg_hint, kept so resync replays can tell a
  // restarted agent which algorithm the host policy wanted. Cold data:
  // touched only at create/close/resync, never on the per-ACK path.
  util::FlatMap<ipc::FlowId, std::string> alg_hints_;
  ipc::FlowId next_flow_id_ = 1;

  // Outgoing batch: messages are encoded straight into `batch_enc_` as
  // they arrive (frame header first, msg count patched at flush), so a
  // flush is one u16 patch + one buffer swap — no per-flush encode pass
  // and no allocation once capacities settle.
  ipc::Encoder batch_enc_;
  size_t pending_msgs_ = 0;
  std::vector<uint8_t> flush_buf_;  // swapped with the encoder at flush
  TimePoint oldest_pending_{};
  TimePoint last_event_time_{};  // freshest tick time, stamps sink messages
  uint32_t tick_seq_ = 0;        // paces the slow-cadence metric drain

  // Incoming decode scratch, reused across frames. `rx_busy_` guards
  // against reentrant handle_frame (a synchronously wired agent can loop
  // a response back while we are still iterating): nested calls fall
  // back to a local vector.
  std::vector<ipc::Message> rx_scratch_;
  bool rx_busy_ = false;

  AckBatchRunner batch_runner_;

  DatapathStats stats_;
  telemetry::ShardStats* shard_stats_ = nullptr;  // sharded mode only
};

}  // namespace ccp::datapath
