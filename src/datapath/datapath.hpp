// The CCP datapath object: owns all flows on one host, batches their
// outgoing messages into frames, and dispatches the agent's commands.
//
// Transport-agnostic by design: outgoing frames go through a FrameTx
// callback and incoming frames arrive via handle_frame(). The simulator
// wires these through its event queue (with a modeled IPC delay); real
// deployments wire them to an ipc::Transport (see TransportDriver).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "datapath/flow.hpp"
#include "ipc/wire.hpp"
#include "util/time.hpp"

namespace ccp::datapath {

struct DatapathConfig {
  /// How long batched (non-urgent) messages may sit before a flush.
  /// Zero = send every message in its own frame immediately.
  Duration flush_interval = Duration::zero();
  /// Flush regardless of age once this many messages are pending.
  size_t max_batch_msgs = 64;
};

struct DatapathStats {
  uint64_t frames_sent = 0;
  uint64_t msgs_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t frames_received = 0;
  uint64_t msgs_received = 0;
  uint64_t decode_errors = 0;
  uint64_t install_errors = 0;
};

class CcpDatapath {
 public:
  using FrameTx = std::function<void(std::vector<uint8_t>)>;

  CcpDatapath(DatapathConfig config, FrameTx tx);

  /// Registers a flow and announces it to the agent.
  CcpFlow& create_flow(const FlowConfig& cfg, const std::string& alg_hint,
                       TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  CcpFlow* flow(ipc::FlowId id);

  /// Feeds one frame from the agent. Malformed frames and bad programs
  /// are counted and dropped — never fatal (§5).
  void handle_frame(std::span<const uint8_t> frame, TimePoint now);

  /// Periodic maintenance: advances every flow's control program and
  /// flushes aged batches. Call at least every flush_interval.
  void tick(TimePoint now);

  /// Sends everything pending now.
  void flush();

  const DatapathStats& stats() const { return stats_; }
  size_t num_flows() const { return flows_.size(); }

 private:
  void enqueue(ipc::Message msg, bool urgent, TimePoint now);

  DatapathConfig config_;
  FrameTx tx_;
  std::map<ipc::FlowId, std::unique_ptr<CcpFlow>> flows_;
  ipc::FlowId next_flow_id_ = 1;
  std::vector<ipc::Message> pending_;
  TimePoint oldest_pending_{};
  TimePoint last_event_time_{};  // freshest tick time, stamps sink messages
  DatapathStats stats_;
};

}  // namespace ccp::datapath
