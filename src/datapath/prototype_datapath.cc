#include "datapath/prototype_datapath.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ccp::datapath {

PrototypeFlow::PrototypeFlow(ipc::FlowId id, FlowConfig config, MessageSink sink)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      cwnd_bytes_(config.init_cwnd_bytes),
      cwnd_target_bytes_(config.init_cwnd_bytes),
      snd_rate_(config.rate_window),
      rcv_rate_(config.rate_window) {}

void PrototypeFlow::emit_loss_urgent() {
  urgent_since_report_ = true;
  auto& msg = std::get<ipc::UrgentMsg>(urgent_msg_);
  msg.flow_id = id_;
  msg.kind = ipc::UrgentKind::Loss;
  if (telemetry::enabled()) {
    telemetry::metrics().dp_urgents.inc();
    msg.emitted_ns = telemetry::now_ns();
  } else {
    msg.emitted_ns = 0;
  }
  sink_(urgent_msg_, /*urgent=*/true);
}

void PrototypeFlow::on_loss(const LossEvent& ev) {
  loss_ += ev.lost_packets;
  if (!urgent_since_report_) emit_loss_urgent();
  maybe_report(ev.now);
}

void PrototypeFlow::on_timeout(const TimeoutEvent& ev) {
  timeout_ = 1;
  urgent_since_report_ = true;
  auto& msg = std::get<ipc::UrgentMsg>(urgent_msg_);
  msg.flow_id = id_;
  msg.kind = ipc::UrgentKind::Timeout;
  if (telemetry::enabled()) {
    telemetry::metrics().dp_urgents.inc();
    msg.emitted_ns = telemetry::now_ns();
  } else {
    msg.emitted_ns = 0;
  }
  sink_(urgent_msg_, /*urgent=*/true);
  maybe_report(ev.now);
}

void PrototypeFlow::tick(TimePoint now) { maybe_report(now); }

void PrototypeFlow::maybe_report_slow(TimePoint now) {
  if (next_report_ == TimePoint{}) {
    next_report_ = now + config_.default_report_interval;
    return;
  }
  emit_report(now);
  const Duration interval = srtt_us_.initialized() && srtt_us_.value() > 0
                                ? srtt()
                                : config_.default_report_interval;
  next_report_ = now + interval;
}

void PrototypeFlow::emit_report(TimePoint now) {
  // Retune the estimator horizons to roughly one RTT (BBR-style delivery
  // rate sampling) here, at report cadence, right before the rates are
  // queried — not per ACK.
  if (srtt_us_.initialized()) {
    const Duration window = std::max(srtt(), Duration::from_millis(1));
    snd_rate_.set_window(window);
    rcv_rate_.set_window(window);
  }
  auto& msg = std::get<ipc::MeasurementMsg>(report_msg_);
  msg.flow_id = id_;
  msg.report_seq = report_seq_++;
  msg.num_acks_folded = acks_since_report_;
  if (telemetry::enabled()) {
    auto& m = telemetry::metrics();
    m.dp_reports.inc();
    m.dp_acks.inc(acks_since_report_);
    msg.emitted_ns = telemetry::now_ns();
  } else {
    msg.emitted_ns = 0;
  }
  // Fixed layout: ipc::prototype_field_names() order. assign() reuses the
  // vector's capacity, so steady-state reporting allocates nothing.
  msg.fields.assign({acked_,
                     acked_pkts_,
                     marked_,
                     loss_,
                     loss_,  // "lost" alias
                     timeout_,
                     srtt_us_.value(),
                     min_rtt_us_ < 1e9 ? min_rtt_us_ : 0,
                     snd_rate_.rate_bps(now),
                     rcv_rate_.rate_bps(now),
                     static_cast<double>(now.nanos()) / 1000.0,
                     inflight_});
  sink_(report_msg_, /*urgent=*/false);
  acked_ = acked_pkts_ = marked_ = loss_ = timeout_ = 0;
  acks_since_report_ = 0;
  urgent_since_report_ = false;
}

void PrototypeFlow::direct_control(const ipc::DirectControlMsg& msg) {
  if (msg.cwnd_bytes.has_value()) {
    const double clamped =
        std::clamp(*msg.cwnd_bytes, static_cast<double>(config_.min_cwnd_bytes),
                   static_cast<double>(config_.max_cwnd_bytes));
    const uint64_t target = static_cast<uint64_t>(clamped);
    cwnd_target_bytes_ = target;
    if (!config_.smooth_cwnd || target <= cwnd_bytes_) cwnd_bytes_ = target;
  }
  if (msg.rate_bps.has_value()) rate_bps_ = std::max(0.0, *msg.rate_bps);
}

// ------------------------------------------------------------- container

PrototypeDatapath::PrototypeDatapath(DatapathConfig config, FrameTx tx)
    : config_(config), tx_(std::move(tx)) {}

void PrototypeDatapath::send(const ipc::Message& msg) {
  send_enc_.clear();
  ipc::encode_frame_into(send_enc_, msg);
  tx_(send_enc_.buffer());
}

PrototypeFlow& PrototypeDatapath::create_flow(const FlowConfig& cfg,
                                              const std::string& alg_hint,
                                              TimePoint /*now*/) {
  const ipc::FlowId id = next_flow_id_++;
  auto sink = [this](const ipc::Message& msg, bool) { send(msg); };
  auto flow = std::make_unique<PrototypeFlow>(id, cfg, std::move(sink));
  PrototypeFlow& ref = *flow;
  flows_.insert_or_assign(id, std::move(flow));

  ipc::CreateMsg create;
  create.flow_id = id;
  create.init_cwnd_bytes = static_cast<uint32_t>(cfg.init_cwnd_bytes);
  create.mss = cfg.mss;
  create.alg_hint = alg_hint;
  create.supports_programs = false;  // the defining limitation
  send(create);
  return ref;
}

void PrototypeDatapath::close_flow(ipc::FlowId id, TimePoint /*now*/) {
  if (flows_.erase(id) > 0) send(ipc::FlowCloseMsg{id});
}

void PrototypeDatapath::handle_frame(std::span<const uint8_t> frame, TimePoint now) {
  (void)now;
  const bool use_scratch = !rx_busy_;
  std::vector<ipc::Message> local;
  std::vector<ipc::Message>& msgs = use_scratch ? rx_scratch_ : local;
  if (use_scratch) rx_busy_ = true;
  size_t n_msgs = 0;
  try {
    n_msgs = ipc::decode_frame_into(frame, msgs);
  } catch (const ipc::WireError& e) {
    if (use_scratch) rx_busy_ = false;
    CCP_WARN("prototype datapath: dropping malformed frame: %s", e.what());
    return;
  }
  for (size_t i = 0; i < n_msgs; ++i) {
    if (const auto* dc = std::get_if<ipc::DirectControlMsg>(&msgs[i])) {
      if (PrototypeFlow* fl = flow(dc->flow_id)) fl->direct_control(*dc);
    } else {
      // Installs, update_fields, vector-mode requests: not supported.
      ++unsupported_msgs_;
    }
  }
  if (use_scratch) rx_busy_ = false;
}

void PrototypeDatapath::tick(TimePoint now) {
  for (auto& [id, flow] : flows_) flow->tick(now);
}

}  // namespace ccp::datapath
