#include "datapath/prototype_datapath.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ccp::datapath {

PrototypeFlow::PrototypeFlow(ipc::FlowId id, FlowConfig config, MessageSink sink)
    : id_(id),
      config_(config),
      sink_(std::move(sink)),
      cwnd_bytes_(config.init_cwnd_bytes),
      cwnd_target_bytes_(config.init_cwnd_bytes),
      snd_rate_(config.rate_window),
      rcv_rate_(config.rate_window) {}

void PrototypeFlow::on_send(const SendEvent& ev) {
  snd_rate_.on_bytes(ev.bytes, ev.now);
}

void PrototypeFlow::on_ack(const AckEvent& ev) {
  if (cwnd_target_bytes_ > cwnd_bytes_) {
    // Same smooth-increase discipline as the full datapath.
    cwnd_bytes_ = std::min(cwnd_target_bytes_, cwnd_bytes_ + ev.bytes_acked);
  }
  if (!ev.rtt_sample.is_zero()) {
    const double rtt_us = static_cast<double>(ev.rtt_sample.micros());
    srtt_us_.update(rtt_us);
    min_rtt_us_ = std::min(min_rtt_us_, rtt_us);
    const Duration window = std::max(srtt(), Duration::from_millis(1));
    snd_rate_.set_window(window);
    rcv_rate_.set_window(window);
  }
  rcv_rate_.on_bytes(ev.bytes_delivered > 0 ? ev.bytes_delivered : ev.bytes_acked,
                     ev.now);
  acked_ += static_cast<double>(ev.bytes_acked);
  acked_pkts_ += ev.packets_acked;
  if (ev.ecn) marked_ += ev.packets_acked;
  loss_ += ev.newly_lost_packets;
  inflight_ = static_cast<double>(ev.bytes_in_flight);
  ++acks_since_report_;

  if (ev.newly_lost_packets > 0 && !urgent_since_report_) {
    urgent_since_report_ = true;
    ipc::UrgentMsg msg;
    msg.flow_id = id_;
    msg.kind = ipc::UrgentKind::Loss;
    sink_(std::move(msg), /*urgent=*/true);
  }
  maybe_report(ev.now);
}

void PrototypeFlow::on_loss(const LossEvent& ev) {
  loss_ += ev.lost_packets;
  if (!urgent_since_report_) {
    urgent_since_report_ = true;
    ipc::UrgentMsg msg;
    msg.flow_id = id_;
    msg.kind = ipc::UrgentKind::Loss;
    sink_(std::move(msg), /*urgent=*/true);
  }
  maybe_report(ev.now);
}

void PrototypeFlow::on_timeout(const TimeoutEvent& ev) {
  timeout_ = 1;
  urgent_since_report_ = true;
  ipc::UrgentMsg msg;
  msg.flow_id = id_;
  msg.kind = ipc::UrgentKind::Timeout;
  sink_(std::move(msg), /*urgent=*/true);
  maybe_report(ev.now);
}

void PrototypeFlow::tick(TimePoint now) { maybe_report(now); }

void PrototypeFlow::maybe_report(TimePoint now) {
  if (next_report_ == TimePoint{}) {
    next_report_ = now + config_.default_report_interval;
    return;
  }
  if (now < next_report_) return;
  emit_report(now);
  const Duration interval = srtt_us_.initialized() && srtt_us_.value() > 0
                                ? srtt()
                                : config_.default_report_interval;
  next_report_ = now + interval;
}

void PrototypeFlow::emit_report(TimePoint now) {
  ipc::MeasurementMsg msg;
  msg.flow_id = id_;
  msg.report_seq = report_seq_++;
  msg.num_acks_folded = acks_since_report_;
  // Fixed layout: ipc::prototype_field_names() order.
  msg.fields = {acked_,
                acked_pkts_,
                marked_,
                loss_,
                loss_,  // "lost" alias
                timeout_,
                srtt_us_.value(),
                min_rtt_us_ < 1e9 ? min_rtt_us_ : 0,
                snd_rate_.rate_bps(now),
                rcv_rate_.rate_bps(now),
                static_cast<double>(now.nanos()) / 1000.0,
                inflight_};
  sink_(std::move(msg), /*urgent=*/false);
  acked_ = acked_pkts_ = marked_ = loss_ = timeout_ = 0;
  acks_since_report_ = 0;
  urgent_since_report_ = false;
}

void PrototypeFlow::direct_control(const ipc::DirectControlMsg& msg) {
  if (msg.cwnd_bytes.has_value()) {
    const double clamped =
        std::clamp(*msg.cwnd_bytes, static_cast<double>(config_.min_cwnd_bytes),
                   static_cast<double>(config_.max_cwnd_bytes));
    const uint64_t target = static_cast<uint64_t>(clamped);
    cwnd_target_bytes_ = target;
    if (!config_.smooth_cwnd || target <= cwnd_bytes_) cwnd_bytes_ = target;
  }
  if (msg.rate_bps.has_value()) rate_bps_ = std::max(0.0, *msg.rate_bps);
}

// ------------------------------------------------------------- container

PrototypeDatapath::PrototypeDatapath(DatapathConfig config, FrameTx tx)
    : config_(config), tx_(std::move(tx)) {}

void PrototypeDatapath::send(ipc::Message msg) {
  tx_(ipc::encode_frame(msg));
}

PrototypeFlow& PrototypeDatapath::create_flow(const FlowConfig& cfg,
                                              const std::string& alg_hint,
                                              TimePoint /*now*/) {
  const ipc::FlowId id = next_flow_id_++;
  auto sink = [this](ipc::Message msg, bool) { send(std::move(msg)); };
  auto flow = std::make_unique<PrototypeFlow>(id, cfg, std::move(sink));
  PrototypeFlow& ref = *flow;
  flows_.emplace(id, std::move(flow));

  ipc::CreateMsg create;
  create.flow_id = id;
  create.init_cwnd_bytes = static_cast<uint32_t>(cfg.init_cwnd_bytes);
  create.mss = cfg.mss;
  create.alg_hint = alg_hint;
  create.supports_programs = false;  // the defining limitation
  send(create);
  return ref;
}

void PrototypeDatapath::close_flow(ipc::FlowId id, TimePoint /*now*/) {
  if (flows_.erase(id) > 0) send(ipc::FlowCloseMsg{id});
}

PrototypeFlow* PrototypeDatapath::flow(ipc::FlowId id) {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : it->second.get();
}

void PrototypeDatapath::handle_frame(std::span<const uint8_t> frame, TimePoint now) {
  (void)now;
  std::vector<ipc::Message> msgs;
  try {
    msgs = ipc::decode_frame(frame);
  } catch (const ipc::WireError& e) {
    CCP_WARN("prototype datapath: dropping malformed frame: %s", e.what());
    return;
  }
  for (const auto& msg : msgs) {
    if (const auto* dc = std::get_if<ipc::DirectControlMsg>(&msg)) {
      if (PrototypeFlow* fl = flow(dc->flow_id)) fl->direct_control(*dc);
    } else {
      // Installs, update_fields, vector-mode requests: not supported.
      ++unsupported_msgs_;
    }
  }
}

void PrototypeDatapath::tick(TimePoint now) {
  for (auto& [id, flow] : flows_) flow->tick(now);
}

}  // namespace ccp::datapath
