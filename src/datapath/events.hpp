// Events the host stack (our simulator's TCP sender, or any other
// datapath integration) feeds into a CCP flow.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace ccp::datapath {

/// One incoming acknowledgment, after the stack has processed it.
struct AckEvent {
  TimePoint now;
  uint64_t bytes_acked = 0;     // newly cumulatively acked
  /// Bytes newly known delivered to the receiver, counting SACKed data
  /// when it is SACKed (not when the cumulative ACK later covers it).
  /// This is what delivery-rate estimation must use: a recovery
  /// cum-ACK "delivers" a burst of long-since-received bytes. Zero means
  /// "same as bytes_acked" (convenience for hand-built events in tests).
  uint64_t bytes_delivered = 0;
  uint32_t packets_acked = 0;
  Duration rtt_sample = Duration::zero();  // zero if no valid sample (e.g. rexmit)
  bool ecn = false;             // ACK echoed an ECN mark
  uint32_t newly_lost_packets = 0;  // marked lost by dupack logic on this ACK
  uint64_t bytes_in_flight = 0;     // after this ACK
  uint32_t packets_in_flight = 0;
  uint64_t bytes_pending = 0;       // app data queued but unsent
};

/// Loss declared via fast retransmit (triple duplicate ACK).
struct LossEvent {
  TimePoint now;
  uint32_t lost_packets = 1;
  uint64_t bytes_in_flight = 0;
};

/// Retransmission timeout fired.
struct TimeoutEvent {
  TimePoint now;
};

/// Outgoing data notification (feeds the sending-rate estimator).
struct SendEvent {
  TimePoint now;
  uint64_t bytes = 0;
};

/// How the cross-flow batch runner (datapath/ack_batch.cc) executes one
/// lane's fold. The value is a pure function of the flow's install-time
/// latches (engine choice, vector mode), so CcpFlow caches it in its hot
/// block at every transition and the runner's per-ACK classification is
/// one byte load instead of a walk over the fold machine's flags.
enum class BatchExec : uint8_t {
  Simd,         // packed batch kernel over the group's SoA slice
  BatchInterp,  // scalar batch interpreter over the SoA slice
  PerLane,      // fold_.on_packet per lane (scalar JIT w/o kernel)
  Verify,       // batch engine on a shadow + authoritative scalar,
                // bitwise-compared per lane (CCP_JIT=Verify)
  Peel,         // full scalar on_ack at finish time
};

}  // namespace ccp::datapath
