// The datapath-facing congestion control interface.
//
// The simulator's TCP sender drives whatever implements this: either a
// native in-datapath algorithm (the paper's baseline — what the Linux
// kernel does today) or a CcpFlow, which forwards measurements to the
// user-space agent and enforces whatever the agent programs.
#pragma once

#include <cstdint>

#include "datapath/events.hpp"

namespace ccp::datapath {

class CcModule {
 public:
  virtual ~CcModule() = default;

  virtual void on_ack(const AckEvent& ev) = 0;
  virtual void on_loss(const LossEvent& ev) = 0;
  virtual void on_timeout(const TimeoutEvent& ev) = 0;
  virtual void on_send(const SendEvent& ev) = 0;
  virtual void tick(TimePoint now) = 0;

  /// Bytes allowed in flight.
  virtual uint64_t cwnd_bytes() const = 0;
  /// Pacing rate in bytes/sec; 0 disables pacing (window-limited only).
  virtual double pacing_rate_bps() const = 0;
};

}  // namespace ccp::datapath
