// Two-tier slab storage for the datapath's flows.
//
// A host datapath owns every flow on the machine — front-end fleets hold
// a million-plus concurrent connections with ~100k connects/disconnects a
// second — and the per-flow storage has to carry that without disturbing
// the per-ACK path. FlowTable replaces the FlatMap<FlowId, unique_ptr>
// design (one heap object per flow, a full-table rehash on every grow)
// with three pieces:
//
//   hot slab    dense chunks of FlowHot blocks (~2 cache lines each), the
//               only per-flow state the per-ACK path touches. Slot i's
//               hot block lives at hot_chunks_[i >> shift][i & mask] for
//               the life of the table — addresses are stable because
//               chunks never move, so CcpFlow keeps a plain pointer and
//               the batch runner's SoA gather reads straight out of the
//               slab.
//
//   cold slab   chunks of CcpFlow storage (config, estimator rings, fold
//               machine, resync scratch). Constructed in place on first
//               use of a slot and *parked* — not destroyed — on close, so
//               a steady-state close->create cycle recycles the object
//               (CcpFlow::reset_for_reuse) and allocates nothing: every
//               internal buffer keeps its capacity.
//
//   index       open-addressing FlowId -> slot map with *incremental*
//               rehash. A grow snapshots the current bucket array as
//               `old_`, allocates a double-size `cur_`, and migrates a
//               bounded number of old buckets per rehash_step() call
//               (the datapath pumps it from on_ack_batch and tick) plus
//               a few per insert — so no ACK burst ever stalls behind a
//               full-table rehash, and the insert-time budget guarantees
//               the old table drains before the next grow can trigger.
//               Lookups probe cur_ then old_; migration copies entries
//               (old_ buckets are never vacated, so its probe chains stay
//               intact) and erase tombstones the old_ copy.
//
// Slots carry a generation counter bumped on every recycle; FlowHandle =
// {slot, generation} so a handle taken before a close can never alias the
// flow that later reuses the slot.
//
// Not thread-safe: one FlowTable per shard/datapath, touched only by its
// owner thread. Chunk memory is allocated by create() on that thread, so
// first-touch policy places a shard's slabs on its worker's NUMA node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datapath/flow.hpp"
#include "ipc/message.hpp"

namespace ccp::datapath {

/// Generation-tagged reference to a table slot. Stale after the flow in
/// the slot is closed, even if the slot has been recycled for a new flow.
struct FlowHandle {
  static constexpr uint32_t kInvalidSlot = 0xffffffffu;
  uint32_t slot = kInvalidSlot;
  uint32_t generation = 0;
  bool valid() const { return slot != kInvalidSlot; }
};

class FlowTable {
 public:
  struct Stats {
    uint64_t creates = 0;        // flows created (fresh + recycled)
    uint64_t recycles = 0;       // creates served by a parked slot
    uint64_t closes = 0;         // flows closed (slot parked)
    uint64_t grows = 0;          // index grows begun
    uint64_t rehash_steps = 0;   // migration steps that moved >= 1 bucket
    uint64_t buckets_migrated = 0;
    // Largest single migration step, in old-table buckets scanned. The
    // bounded-pause guarantee: never exceeds the largest budget passed to
    // rehash_step() (or kInsertMigrateBuckets for insert-time steps).
    uint64_t max_step_buckets = 0;
    // Grows forced to drain the previous old table synchronously first.
    // Unreachable by the budget math (see start_grow); tests pin it at 0.
    uint64_t forced_drains = 0;
  };

  FlowTable() = default;
  ~FlowTable() { clear(); }
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// The sink handed to every flow the table constructs. Set once before
  /// the first create (the datapath's constructor does).
  void set_sink(MessageSink sink) { sink_ = std::move(sink); }

  /// Pre-sizes the index for `expected` flows (only meaningful on an
  /// empty table). Zero keeps the small default; the table then grows
  /// incrementally through every doubling.
  void reserve(size_t expected);

  /// Creates (or recycles a parked slot for) flow `id`. An existing flow
  /// with the same id is closed first. `alg_hint` is interned: one pooled
  /// string per distinct algorithm name, a uint16 per flow.
  CcpFlow& create(ipc::FlowId id, const FlowConfig& cfg,
                  std::string_view alg_hint);

  /// Closes flow `id`: unlinks it from the index, bumps the slot's
  /// generation, and parks the CcpFlow for reuse. Returns false if the
  /// id is unknown.
  bool erase(ipc::FlowId id);

  /// Per-packet demux: one probe sequence over cur_ (plus old_ only
  /// while a grow is draining). Inline — this is the hot path's entry.
  CcpFlow* find(ipc::FlowId id) {
    const uint64_t h = mix(id);
    if (!cur_.empty()) {
      const size_t mask = cur_.size() - 1;
      size_t i = static_cast<size_t>(h >> cur_shift_);
      while (true) {
        const Bucket& b = cur_[i];
        if (b.slot == kEmptyMark) break;
        if (b.key == id) return b.flow;
        i = (i + 1) & mask;
      }
    }
    if (!old_.empty()) [[unlikely]] {
      const size_t mask = old_.size() - 1;
      size_t i = static_cast<size_t>(h >> old_shift_);
      while (true) {
        const Bucket& b = old_[i];
        if (b.slot == kEmptyMark) break;
        if (b.slot != kTombstoneMark && b.key == id) return b.flow;
        i = (i + 1) & mask;
      }
    }
    return nullptr;
  }

  /// find() plus prefetch dedup for the batch intake pipeline: sets
  /// `fresh` to true iff this is the first find_mark() for the flow with
  /// this `stamp` value (and records the stamp in its bucket — one store
  /// to a line the probe just loaded). A Zipf-hot flow resolved a dozen
  /// times per burst is prefetched once; the cold flows keep the
  /// fill-buffer slots. Stamp 0 is reserved (fresh buckets carry it).
  CcpFlow* find_mark(ipc::FlowId id, uint32_t stamp, bool& fresh) {
    const uint64_t h = mix(id);
    fresh = false;
    if (!cur_.empty()) {
      const size_t mask = cur_.size() - 1;
      size_t i = static_cast<size_t>(h >> cur_shift_);
      while (true) {
        Bucket& b = cur_[i];
        if (b.slot == kEmptyMark) break;
        if (b.key == id) {
          fresh = b.stamp != stamp;
          b.stamp = stamp;
          return b.flow;
        }
        i = (i + 1) & mask;
      }
    }
    if (!old_.empty()) [[unlikely]] {
      const size_t mask = old_.size() - 1;
      size_t i = static_cast<size_t>(h >> old_shift_);
      while (true) {
        Bucket& b = old_[i];
        if (b.slot == kEmptyMark) break;
        if (b.slot != kTombstoneMark && b.key == id) {
          fresh = b.stamp != stamp;
          b.stamp = stamp;
          return b.flow;
        }
        i = (i + 1) & mask;
      }
    }
    return nullptr;
  }

  /// Pulls the index bucket line(s) for `id` toward cache ahead of the
  /// find() a few ACKs later — the batch runner's intake pipeline uses
  /// this so a million-flow table probes mostly-warm lines.
  void prefetch(ipc::FlowId id) const {
    if (cur_.empty()) return;
    const uint64_t h = mix(id);
    __builtin_prefetch(&cur_[h >> cur_shift_]);
    if (!old_.empty()) [[unlikely]] {
      __builtin_prefetch(&old_[h >> old_shift_]);
    }
  }

  /// Generation-tagged handle for flow `id` (invalid if unknown).
  FlowHandle handle_of(ipc::FlowId id) const;
  /// Resolves a handle; nullptr if the slot was recycled (or freed)
  /// since the handle was taken.
  CcpFlow* at(FlowHandle h) {
    if (h.slot >= meta_.size()) return nullptr;
    const SlotMeta& m = meta_[h.slot];
    if (m.state != SlotState::kLive || m.generation != h.generation) {
      return nullptr;
    }
    return slot_flow_[h.slot];
  }

  /// The interned algorithm hint recorded at create (empty if unknown).
  const std::string& hint_of(ipc::FlowId id) const;
  size_t distinct_hints() const { return hint_names_.size(); }

  /// True while a grow is still draining its old bucket array.
  bool rehash_pending() const { return !old_.empty(); }
  /// Migrates at most `max_buckets` old buckets into the current array.
  /// Returns the number of buckets scanned (0 when nothing is pending).
  size_t rehash_step(size_t max_buckets);

  size_t size() const { return live_; }
  size_t index_capacity() const { return cur_.size(); }
  /// Live flows over current-array buckets, the gauge the telemetry
  /// layer publishes (in basis points there; a plain ratio here).
  double load_factor() const {
    return cur_.empty() ? 0.0
                        : static_cast<double>(live_) /
                              static_cast<double>(cur_.size());
  }
  const Stats& stats() const { return stats_; }

  /// Visits every live flow in slot (creation) order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (size_t s = 0; s < meta_.size(); ++s) {
      if (meta_[s].state == SlotState::kLive) {
        fn(*slot_flow_[s], hint_names_[meta_[s].hint]);
      }
    }
  }

  /// Visits up to `max_flows` live flows starting at slot `cursor`,
  /// wrapping once; returns the cursor for the next call. The datapath's
  /// tick uses this to bound per-call maintenance the same way the index
  /// bounds per-call migration.
  template <typename Fn>
  size_t sweep(size_t cursor, size_t max_flows, Fn&& fn) {
    const size_t n = meta_.size();
    if (n == 0 || live_ == 0) return 0;
    if (cursor >= n) cursor = 0;
    size_t visited = 0;
    for (size_t scanned = 0; scanned < n && visited < max_flows; ++scanned) {
      if (meta_[cursor].state == SlotState::kLive) {
        fn(*slot_flow_[cursor]);
        ++visited;
      }
      cursor = cursor + 1 == n ? 0 : cursor + 1;
    }
    return cursor;
  }

  /// Destroys every flow (live and parked) and releases all storage.
  void clear();

 private:
  enum class SlotState : uint8_t {
    kEmpty = 0,   // cold slot never constructed
    kLive = 1,    // flow active, id in the index
    kParked = 2,  // flow constructed but closed; on the free list
  };

  struct SlotMeta {
    ipc::FlowId id = 0;
    uint32_t generation = 0;
    uint16_t hint = 0;
    SlotState state = SlotState::kEmpty;
  };

  struct Bucket {
    ipc::FlowId key = 0;
    uint32_t slot = kEmptyMark;
    // Prefetch-dedup stamp for find_mark(): matches the caller's stamp
    // when this flow was already resolved in the current burst, so the
    // intake pipeline skips re-prefetching a hot flow's lines. Lives in
    // what would otherwise be padding; stale values only cause one
    // harmless extra prefetch.
    uint32_t stamp = 0;
    // The slot's flow, denormalized into the bucket so the per-ACK
    // find() is ONE dependent load (the bucket line), not a probe plus a
    // chase through slot_flow_. Worth 2x bucket size: at a million flows
    // both arrays blow the cache anyway and the extra line the chase
    // touched was the expensive part. Stale in tombstones (never read).
    CcpFlow* flow = nullptr;
  };

  // Slab chunking: fixed-size chunks keep every slot's address stable
  // for the life of the table (flows hold pointers into the hot slab and
  // the table hands out CcpFlow&), while growth stays O(chunk).
  static constexpr size_t kChunkShift = 12;  // 4096 slots per chunk
  static constexpr size_t kChunkSlots = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSlots - 1;

  static constexpr uint32_t kEmptyMark = 0xffffffffu;
  static constexpr uint32_t kTombstoneMark = 0xfffffffeu;
  static constexpr size_t kMinIndexCap = 64;
  // Old buckets migrated per index insert. Doubling at 3/4 load means at
  // least cap(old)*3/4 inserts happen before the next grow could
  // trigger; 4 buckets each migrates >= 3x the old capacity — the old
  // table always drains first even if the datapath never pumps
  // rehash_step (an idle shard taking a connect burst).
  static constexpr size_t kInsertMigrateBuckets = 4;

  // Raw storage for one cold slot; CcpFlow is placement-constructed on
  // first use and recycled (never destroyed) until clear().
  struct ColdSlot {
    alignas(CcpFlow) unsigned char bytes[sizeof(CcpFlow)];
  };

  static uint64_t mix(ipc::FlowId id) {
    // Fibonacci finalizer (same as util::FlatMap): sequential flow ids
    // land well-spread, and the top bits index the table.
    return static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ULL;
  }

  CcpFlow* flow_at_slot(uint32_t slot) { return slot_flow_[slot]; }
  uint32_t alloc_slot();
  uint16_t intern_hint(std::string_view hint);

  void index_insert(ipc::FlowId id, uint32_t slot);
  /// Finds `id`'s bucket; removes it from cur_ (backward shift) and/or
  /// tombstones it in old_. Returns the slot, or kEmptyMark if absent.
  uint32_t index_erase(ipc::FlowId id);
  uint32_t index_find(ipc::FlowId id) const;
  void start_grow();
  size_t migrate(size_t max_buckets);
  static void raw_insert(std::vector<Bucket>& table, unsigned shift,
                         ipc::FlowId key, uint32_t slot, CcpFlow* flow);

  MessageSink sink_;

  std::vector<std::unique_ptr<FlowHot[]>> hot_chunks_;
  std::vector<std::unique_ptr<ColdSlot[]>> cold_chunks_;
  std::vector<CcpFlow*> slot_flow_;  // slot -> constructed flow (dense)
  std::vector<SlotMeta> meta_;
  std::vector<uint32_t> free_;  // parked slots, LIFO for cache-warm reuse
  size_t live_ = 0;

  std::vector<Bucket> cur_;
  std::vector<Bucket> old_;
  unsigned cur_shift_ = 64;
  unsigned old_shift_ = 64;
  size_t migrate_pos_ = 0;

  std::vector<std::string> hint_names_;  // interned algorithm hints

  Stats stats_;
};

}  // namespace ccp::datapath
