// One shard of the multi-core datapath (see sharded_datapath.hpp).
//
// Ownership contract (docs/PERF.md, "Threading model"): exactly one
// worker thread — the shard's owner — touches a shard's flows. The owner
// calls create_flow()/flow()/on_ack()/on_send()/poll(); the control
// plane (one other thread) only pushes decoded agent commands into the
// shard's SPSC CommandQueue and reads its epoch counters. There is no
// mutex anywhere on the ACK path: commands cross into the shard only
// inside poll(), the quiescent point between ACK batches — the RCU-style
// epoch publication the install path uses instead of locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datapath/datapath.hpp"
#include "ipc/message.hpp"
#include "lang/compiler.hpp"
#include "util/time.hpp"

namespace ccp::datapath {

/// Which shard owns a flow id. The id is mixed (splitmix64 finalizer)
/// before reduction so sequential, strided, or otherwise crafted id sets
/// still spread across shards — and the mix differs from the FlatMap's
/// Fibonacci slot hash, so shard routing and in-table probe collisions
/// stay decorrelated.
inline uint32_t shard_of(ipc::FlowId id, uint32_t n_shards) {
  uint64_t h = static_cast<uint64_t>(id) + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<uint32_t>(h % n_shards);
}

/// One agent command, decoded and (for Install) compiled by the control
/// plane, addressed to a single flow on a single shard. The compiled
/// program is shared and immutable — every shard installing the same
/// text holds the same CompiledProgram; per-flow VM state stays in each
/// flow's FoldMachine.
struct ShardCommand {
  /// Resync is shard-wide (flow_id unused): the shard replays a
  /// FlowSummary for every flow it owns on its own lane. Because the
  /// queue is FIFO, every command published before the Resync applies
  /// first — the replayed summaries always reflect the newest installed
  /// state, and a restarted agent cannot observe a pre-command snapshot.
  enum class Kind : uint8_t { Install, UpdateFields, DirectControl, Resync };

  Kind kind = Kind::DirectControl;
  ipc::FlowId flow_id = 0;

  // Install
  std::shared_ptr<const lang::CompiledProgram> program;
  bool vector_mode = false;
  // Install (positional, pre-bound by the control plane) / UpdateFields
  std::vector<double> var_values;

  // DirectControl
  std::optional<double> cwnd_bytes;
  std::optional<double> rate_bps;

  // Resync
  uint64_t resync_token = 0;

  // Control-loop span carried from the originating command message; the
  // control plane stamps enqueue_ns when it pushes the command, and the
  // shard closes the span at its quiescent-point apply.
  ipc::SpanStamp span;
  uint64_t enqueue_ns = 0;
};

/// Bounded SPSC command queue with epoch publication. The control plane
/// (single producer) publishes commands with a releasing tail store; the
/// shard owner (single consumer) picks them up at quiescent points with
/// one acquiring tail load. Epochs are the monotonic publish/apply
/// counters: the shard has observed every command up to applied_epoch(),
/// and the queue is quiescent when the two are equal.
class CommandQueue {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit CommandQueue(size_t capacity = 256);

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  /// Producer side. Returns false (caller counts the drop) when the
  /// consumer has fallen `capacity` commands behind.
  bool push(ShardCommand cmd);

  /// Consumer side: applies `fn` to every pending command, releasing
  /// each slot (and the shared_ptr/vector payloads it held) in place.
  template <typename Fn>
  size_t drain(Fn&& fn) {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t start = head;
    while (head != tail) {
      ShardCommand& slot = slots_[head & mask_];
      fn(slot);
      slot = ShardCommand{};  // free payload refs on the consumer side
      ++head;
    }
    if (head != start) head_.store(head, std::memory_order_release);
    return static_cast<size_t>(head - start);
  }

  /// One acquiring load + one relaxed load; the consumer's cheap "any
  /// commands published since my epoch?" check at a quiescent point.
  bool has_pending() const {
    return tail_.load(std::memory_order_acquire) !=
           head_.load(std::memory_order_relaxed);
  }

  uint64_t publish_epoch() const { return tail_.load(std::memory_order_acquire); }
  uint64_t applied_epoch() const { return head_.load(std::memory_order_acquire); }
  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<ShardCommand> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> tail_{0};  // next publish (producer)
  alignas(64) std::atomic<uint64_t> head_{0};  // next apply (consumer)
};

/// A per-core slice of the datapath: its own flat flow table, fold/VM
/// execution, report batcher, IPC lane, and telemetry counter set. Thin
/// wrapper over CcpDatapath — everything PR-1/PR-2 proved about the
/// single-core hot path (zero-alloc, lock-free) holds per shard by
/// construction, because a shard *is* that datapath plus a command
/// queue.
class Shard {
 public:
  /// `lane_tx` carries this shard's outgoing frames (reports/urgents) —
  /// typically one lane of ipc::make_*_lanes(); see ipc/lanes.hpp.
  Shard(uint32_t index, const DatapathConfig& config, CcpDatapath::FrameTx lane_tx,
        size_t command_queue_capacity = 256);

  // --- owner-thread API ---

  /// Registers a flow under a caller-chosen id (which must route to this
  /// shard; ShardedDatapath::alloc_flow_id picks one) and announces it
  /// to the agent on this shard's lane.
  CcpFlow& create_flow(ipc::FlowId id, const FlowConfig& cfg,
                       const std::string& alg_hint, TimePoint now);
  void close_flow(ipc::FlowId id, TimePoint now);
  /// Per-packet demux into this shard's flow table.
  CcpFlow* flow(ipc::FlowId id) { return dp_.flow(id); }

  /// Batch intake for a burst of ACKs this shard owns (all flow ids must
  /// route here). One runner per shard, owner-thread only — the batch
  /// path inherits the shard's no-lock, zero-alloc contract by
  /// construction. See datapath/ack_batch.hpp.
  void on_ack_batch(std::span<const FlowAck> burst) { dp_.on_ack_batch(burst); }

  /// The quiescent point between ACK batches: applies every command the
  /// control plane has published since the last poll (epoch pickup),
  /// then ticks flows and flushes aged report batches. Call every few
  /// hundred ACKs and whenever the shard is otherwise idle.
  void poll(TimePoint now);
  void flush() { dp_.flush(); }

  const DatapathStats& stats() const { return dp_.stats(); }
  size_t num_flows() const { return dp_.num_flows(); }
  uint64_t commands_applied() const { return commands_.applied_epoch(); }

  // --- control-plane API (single producer; any thread may read index) ---

  CommandQueue& commands() { return commands_; }
  uint32_t index() const { return index_; }

 private:
  void apply(ShardCommand& cmd, TimePoint now);

  uint32_t index_;
  CcpDatapath dp_;
  CommandQueue commands_;
};

}  // namespace ccp::datapath
