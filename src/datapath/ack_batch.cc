#include "datapath/ack_batch.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "datapath/datapath.hpp"
#include "datapath/flow.hpp"
#include "lang/compiler.hpp"
#include "lang/vm.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace ccp::datapath {

using lang::kBatchLanes;

AckBatchRunner::AckBatchRunner() {
  // Pre-size the staging rows for the common case (the default program:
  // 9 folds, a dozen slots) so even the first wave allocates nothing.
  for (Arena* a : {&lead_, &aux_}) {
    a->fold.resize(16 * kBatchLanes);
    a->pkt.resize(lang::kNumPktFields * kBatchLanes);
    a->vars.resize(8 * kBatchLanes);
    a->scratch.resize(32 * kBatchLanes);
    a->urgent_before.resize(8 * kBatchLanes);
  }
}

void AckBatchRunner::reserve(Arena& a, const lang::CompiledProgram& prog) {
  const size_t nf = prog.num_folds();
  const size_t nv = prog.num_vars();
  const size_t ns = prog.fold_block.n_slots;
  const size_t nu = prog.urgent_indices.size();
  // Grow-only staging: steady state never reallocates.
  if (a.fold.size() < nf * kBatchLanes) a.fold.resize(nf * kBatchLanes);
  if (a.vars.size() < std::max<size_t>(nv, 1) * kBatchLanes) {
    a.vars.resize(std::max<size_t>(nv, 1) * kBatchLanes);
  }
  if (a.scratch.size() < std::max<size_t>(ns, 1) * kBatchLanes) {
    a.scratch.resize(std::max<size_t>(ns, 1) * kBatchLanes);
  }
  if (a.urgent_before.size() < std::max<size_t>(nu, 1) * kBatchLanes) {
    a.urgent_before.resize(std::max<size_t>(nu, 1) * kBatchLanes);
  }
}

void AckBatchRunner::stage_lane(CcpFlow& flow,
                                const lang::CompiledProgram& prog,
                                size_t col) {
  lang::FoldMachine& fm = flow.fold_machine();
  const double* st = fm.state_data();
  double* fold = lead_.fold.data();
  const size_t nf = prog.num_folds();
  for (size_t r = 0; r < nf; ++r) fold[r * kBatchLanes + col] = st[r];
  const double* vs = fm.vars_data();
  double* vars = lead_.vars.data();
  const size_t nv = prog.num_vars();
  for (size_t r = 0; r < nv; ++r) vars[r * kBatchLanes + col] = vs[r];
  // Packet rows: only the fields the program actually loads (the
  // compiler's pkt_fields_used bitmap); unread rows keep stale junk
  // the kernel never addresses.
  const double* pk = lang::jit::pkt_ptr(flow.last_pkt());
  double* pkt = lead_.pkt.data();
  for (uint32_t b = prog.pkt_fields_used; b != 0; b &= b - 1) {
    const unsigned f = static_cast<unsigned>(std::countr_zero(b));
    pkt[f * kBatchLanes + col] = pk[f];
  }
  const auto& urgent = prog.urgent_indices;
  double* ub = lead_.urgent_before.data();
  for (size_t u = 0; u < urgent.size(); ++u) {
    ub[u * kBatchLanes + col] = st[urgent[u]];
  }
}

void AckBatchRunner::run(CcpDatapath& dp, std::span<const FlowAck> burst) {
  // Intake prefetch pipeline. At million-flow scale the per-ACK cost is
  // dominated by dependent cache misses: the index bucket line, then the
  // flow object's lines, then the lines behind the flow's pointers (hot
  // block, estimator rings, fold state). Each chunk of 32 ACKs runs
  // three full-width sweeps before any ACK is processed, so every level
  // of the dependency chain is issued a whole sweep (hundreds of ns)
  // ahead of its first use:
  //   sweep 1  pull every index bucket line (pure hash, no loads)
  //   sweep 2  resolve every flow pointer (buckets now warm) and
  //            prefetch the flow objects' own lines — address
  //            arithmetic only, stalls on nothing
  //   sweep 3  dereference the (now warm) flows to prefetch the
  //            indirect lines: ring write positions, fold state
  // Holding resolved pointers across the chunk is safe because nothing
  // inside a burst can create or close flows: emission goes sink ->
  // enqueue -> FrameTx, and no FrameTx re-enters the flow lifecycle
  // (close_flow / create_flow happen between bursts, on the owner
  // thread).
  // A Zipf-popular stream is mostly repeats of a few hot flows whose
  // lines are already resident; prefetching those again wastes the issue
  // slots and fill-buffer probes the genuinely cold flows need. The
  // resolve sweep dedups per chunk through find_mark(): the first
  // resolution of a flow prefetches, repeats come back tagged (pointer
  // low bit) so the deep sweep skips them too.
  FlowTable& table = dp.flow_table();
  static constexpr size_t kChunk = 32;
  static constexpr uintptr_t kSeenTag = 1;
  CcpFlow* look[kChunk];
  for (size_t base = 0; base < burst.size(); base += kChunk) {
    const size_t n = std::min(burst.size() - base, kChunk);
    const FlowAck* const acks = burst.data() + base;
    if (++burst_stamp_ == 0) ++burst_stamp_;  // 0 is the fresh-bucket value
    for (size_t i = 0; i < n; ++i) table.prefetch(acks[i].flow_id);
    for (size_t i = 0; i < n; ++i) {
      bool fresh = false;
      CcpFlow* f = table.find_mark(acks[i].flow_id, burst_stamp_, fresh);
      if (f != nullptr && fresh) {
        f->prefetch_self();
      } else if (f != nullptr) {
        f = reinterpret_cast<CcpFlow*>(reinterpret_cast<uintptr_t>(f) |
                                       kSeenTag);
      }
      look[i] = f;
    }
    for (size_t i = 0; i < n; ++i) {
      CcpFlow* f = look[i];
      if (f != nullptr && (reinterpret_cast<uintptr_t>(f) & kSeenTag) == 0) {
        f->prefetch_for_ack();
      }
    }
    run_chunk(dp, std::span<const FlowAck>(acks, n), look);
  }
}

void AckBatchRunner::run_chunk(CcpDatapath& dp, std::span<const FlowAck> burst,
                               CcpFlow* const* look) {
  static constexpr uintptr_t kSeenTag = 1;
  const size_t n = burst.size();
  for (size_t i = 0; i < n; ++i) {
    const FlowAck& fa = burst[i];
    CcpFlow* flow = reinterpret_cast<CcpFlow*>(
        reinterpret_cast<uintptr_t>(look[i]) & ~kSeenTag);
    if (flow == nullptr) continue;

    FlowHot& hot = flow->hot();
    if (hot.batch_epoch == wave_id_) {
      // Second ACK for this flow inside the open wave: its fold must
      // read the first ACK's writes (and its emissions must follow the
      // first's), so the wave closes here and a fresh one starts.
      flush_wave();
    }
    hot.batch_epoch = wave_id_;
    // Intake-time on_send is safe: flows are independent and a same-flow
    // repeat just flushed above, so no earlier lane of this wave can
    // observe this flow's estimator mid-update.
    if (fa.sent_bytes > 0) {
      flow->on_send(SendEvent{fa.ev.now, fa.sent_bytes});
    }

    Lane& ln = lanes_[n_lanes_];
    ln.flow = flow;
    ln.ack = &fa;
    ln.now = fa.ev.now;
    ln.urgent = false;
    ln.lead_col = -1;
    ln.exec = classify(*flow, fa.ev.now);
    if (ln.exec != Exec::Peel) {
      flow->ack_prepare(fa.ev);
      // Group after prepare: the watchdog gate inside ack_prepare may in
      // principle swap the program (in practice expired deadlines peel),
      // and grouping must see whatever program the fold will run.
      const lang::CompiledProgram* prog = flow->fold_machine().program();
      Group* grp = nullptr;
      for (size_t gi = 0; gi < n_groups_; ++gi) {
        if (groups_[gi].prog == prog && groups_[gi].exec == ln.exec) {
          grp = &groups_[gi];
          break;
        }
      }
      if (grp == nullptr) {
        grp = &groups_[n_groups_++];
        grp->prog = prog;
        grp->exec = ln.exec;
        grp->n = 0;
        if (grp == &groups_[0] && ln.exec != Exec::PerLane) {
          reserve(lead_, *prog);
        }
      }
      if (grp == &groups_[0] && ln.exec != Exec::PerLane) {
        // Lead-group lane: stage its SoA columns now, while ack_prepare
        // just pulled the flow's hot block and packet view into cache.
        ln.lead_col = static_cast<int8_t>(grp->n);
        stage_lane(*flow, *prog, grp->n);
      }
      grp->lane[grp->n++] = static_cast<uint8_t>(n_lanes_);
    }
    ++n_lanes_;
    if (n_lanes_ == kBatchLanes) flush_wave();
  }
  flush_wave();
}

// Engine classification for one lane: the cached per-flow class (one
// byte, maintained by CcpFlow across installs and mode switches) plus
// the two genuinely per-ACK gates.
AckBatchRunner::Exec AckBatchRunner::classify(CcpFlow& flow, TimePoint now) {
  const FlowHot& hot = flow.hot();
  // Covers "no installed program" and vector mode (report-dominated;
  // stays on the scalar path).
  if (hot.exec_class == Exec::Peel) return Exec::Peel;
  // An expired watchdog deadline can enter fallback, which installs a
  // program and emits — emission may only happen in arrival order at
  // finish time, so the whole ACK runs scalar.
  if (now >= hot.watchdog_deadline) return Exec::Peel;
  // Profiler-sampled ACKs peel: the per-stage stamp layout (measure /
  // watchdog / fold / emit) is the scalar path's. Same gate as scalar
  // on_ack — the mask's own relaxed load, no enabled() wrapper.
  const uint32_t mask = telemetry::profile_sample_mask();
  if (mask != 0 &&
      (static_cast<uint32_t>(hot.acks_folded_total) & mask) == 0) {
    return Exec::Peel;
  }
  return hot.exec_class;
}

namespace {

/// Duplicates SoA column `from` into column `to` for `rows` rows — the
/// ghost-lane padding for odd-count SIMD groups.
void dup_column(double* soa, size_t rows, size_t from, size_t to) {
  for (size_t r = 0; r < rows; ++r) {
    soa[r * kBatchLanes + to] = soa[r * kBatchLanes + from];
  }
}

}  // namespace

void AckBatchRunner::flush_wave() {
  if (n_lanes_ == 0) return;

  // Wave-sampled FoldBatch stage: one rdtsc pair around the whole
  // grouped execute, sampled by wave (not by ACK — a wave is the unit of
  // batch work). Lead-group scatter happens during finish, so the stage
  // covers the grouped fold execution itself.
  bool sampled = false;
  uint64_t t0 = 0;
  if (telemetry::enabled()) {
    const uint32_t mask = telemetry::profile_sample_mask();
    if (mask != 0 && (static_cast<uint32_t>(wave_seq_) & mask) == 0) {
      sampled = true;
      t0 = telemetry::prof_cycles();
    }
    ++wave_seq_;
  }

  for (size_t gi = 0; gi < n_groups_; ++gi) {
    execute_group(groups_[gi], /*staged=*/gi == 0);
  }

  if (sampled) [[unlikely]] {
    telemetry::prof_record(telemetry::ProfStage::FoldBatch,
                           telemetry::prof_cycles() - t0);
  }

  if (telemetry::enabled()) {
    // Per-wave occupancy accounting: one pass here instead of counter
    // RMWs per ACK. dp_acks itself needs no pass at all — every lane
    // (peeled ones included) bumps its flow's plain acks_seen in
    // measure_ack, drained at report/tick/close.
    size_t simd_lanes = 0;
    for (size_t gi = 0; gi < n_groups_; ++gi) {
      const Group& g = groups_[gi];
      // Single-lane groups run per-lane scalar regardless of class.
      if (g.exec == Exec::Simd && g.n >= 2) simd_lanes += g.n;
    }
    auto& m = telemetry::metrics();
    m.dp_batch_lanes_sum.inc(n_lanes_);
    m.dp_batch_waves.inc();
    m.dp_batch_simd_lanes.inc(simd_lanes);
    m.dp_batch_scalar_lanes.inc(n_lanes_ - simd_lanes);
  }

  // Finish in arrival order. Every report/urgent of the wave is emitted
  // here — peeled lanes run their whole scalar ACK at their original
  // position — so the byte stream matches a scalar replay exactly.
  // Lead-group lanes scatter their fold columns back (and compute their
  // urgency verdict) at their own finish slot: flows are independent, so
  // deferring a lane's state write past an earlier lane's emission
  // cannot be observed.
  const size_t n = n_lanes_;
  const lang::CompiledProgram* lead_prog =
      n_groups_ > 0 ? groups_[0].prog : nullptr;
  // Reset intake state first: a peeled on_ack below may reenter nothing,
  // but keeping the invariant "runner idle during finish" costs nothing.
  n_lanes_ = 0;
  n_groups_ = 0;
  ++wave_id_;
  for (size_t i = 0; i < n; ++i) {
    Lane& ln = lanes_[i];
    if (ln.exec == Exec::Peel) {
      ln.flow->on_ack(ln.ack->ev);
      continue;
    }
    if (ln.lead_col >= 0 &&
        (ln.exec == Exec::Simd || ln.exec == Exec::BatchInterp)) {
      // Deferred scatter + urgency judgment from the lead arena. (Verify
      // lanes never scatter — the per-flow machine stays authoritative —
      // and per-lane-executed lanes cleared lead_col in execute_group.)
      const size_t col = static_cast<size_t>(ln.lead_col);
      const size_t nf = lead_prog->num_folds();
      double* st = ln.flow->fold_machine().state_data();
      const double* fold = lead_.fold.data();
      for (size_t r = 0; r < nf; ++r) st[r] = fold[r * kBatchLanes + col];
      const auto& urgent = lead_prog->urgent_indices;
      const double* ub = lead_.urgent_before.data();
      bool urg = false;
      for (size_t u = 0; u < urgent.size(); ++u) {
        // The same comparison scalar on_packet uses (double !=): a NaN
        // urgent register reads as changed every ACK there too.
        if (st[urgent[u]] != ub[u * kBatchLanes + col]) {
          urg = true;
          break;
        }
      }
      ln.urgent = urg;
    }
    ln.flow->ack_finish(ln.urgent, ln.now);
  }
}

void AckBatchRunner::gather(const Group& g, Arena& a) {
  const lang::CompiledProgram* prog = g.prog;
  const size_t nf = prog->num_folds();
  const size_t nv = prog->num_vars();
  const auto& urgent = prog->urgent_indices;
  const uint32_t used = prog->pkt_fields_used;
  for (size_t i = 0; i < g.n; ++i) {
    CcpFlow* flow = lanes_[g.lane[i]].flow;
    lang::FoldMachine& fm = flow->fold_machine();
    const double* st = fm.state_data();
    for (size_t r = 0; r < nf; ++r) a.fold[r * kBatchLanes + i] = st[r];
    const double* vs = fm.vars_data();
    for (size_t r = 0; r < nv; ++r) a.vars[r * kBatchLanes + i] = vs[r];
    const double* pk = lang::jit::pkt_ptr(flow->last_pkt());
    for (uint32_t b = used; b != 0; b &= b - 1) {
      const unsigned f = static_cast<unsigned>(std::countr_zero(b));
      a.pkt[f * kBatchLanes + i] = pk[f];
    }
    for (size_t u = 0; u < urgent.size(); ++u) {
      a.urgent_before[u * kBatchLanes + i] = st[urgent[u]];
    }
  }
}

void AckBatchRunner::scatter_and_judge(const Group& g, Arena& a) {
  const lang::CompiledProgram* prog = g.prog;
  const size_t nf = prog->num_folds();
  const auto& urgent = prog->urgent_indices;
  for (size_t i = 0; i < g.n; ++i) {
    Lane& ln = lanes_[g.lane[i]];
    double* st = ln.flow->fold_machine().state_data();
    for (size_t r = 0; r < nf; ++r) st[r] = a.fold[r * kBatchLanes + i];
    bool urg = false;
    for (size_t u = 0; u < urgent.size(); ++u) {
      if (st[urgent[u]] != a.urgent_before[u * kBatchLanes + i]) {
        urg = true;
        break;
      }
    }
    ln.urgent = urg;
  }
}

void AckBatchRunner::execute_group(const Group& g, bool staged) {
  const size_t n = g.n;
  if (g.exec == Exec::PerLane || n == 1) {
    // Scalar-JIT programs without a batch kernel, and any single-lane
    // group: the per-flow machine is already the fastest correct engine.
    // (A single Verify lane still dual-runs inside on_packet.) Staged
    // columns are abandoned: clear lead_col so finish does not scatter
    // stale staging over the authoritative fold result.
    for (size_t i = 0; i < n; ++i) {
      Lane& ln = lanes_[g.lane[i]];
      ln.lead_col = -1;
      ln.urgent = ln.flow->fold_machine().on_packet(ln.flow->last_pkt());
    }
    return;
  }

  Arena& a = staged ? lead_ : aux_;
  if (!staged) {
    reserve(a, *g.prog);
    gather(g, a);
  }

  if (g.exec == Exec::Verify) {
    // Three-way: the batch engine folds a shadow SoA slice, the per-flow
    // machine folds authoritatively (itself comparing scalar JIT against
    // the interpreter), and the shadow columns must match the
    // authoritative registers bit for bit. No scatter — the batch result
    // can only ever skew the mismatch counter, never the congestion
    // response.
    lang::jit::BatchFoldFn fn =
        lanes_[g.lane[0]].flow->fold_machine().batch_fn();
    const lang::CompiledProgram* prog = g.prog;
    if (fn != nullptr) {
      if (n % 2 != 0) {
        dup_column(a.fold.data(), prog->num_folds(), n - 1, n);
        dup_column(a.vars.data(), prog->num_vars(), n - 1, n);
        dup_column(a.pkt.data(), lang::kNumPktFields, n - 1, n);
      }
      fn(a.fold.data(), a.pkt.data(), a.vars.data(), a.scratch.data(),
         (n + 1) / 2);
    } else {
      lang::eval_block_batch(prog->fold_block, a.fold.data(), a.pkt.data(),
                             a.vars.data(), a.scratch.data(), n);
    }
    const size_t nf = prog->num_folds();
    for (size_t i = 0; i < n; ++i) {
      Lane& ln = lanes_[g.lane[i]];
      ln.urgent = ln.flow->fold_machine().on_packet(ln.flow->last_pkt());
      const double* st = ln.flow->fold_machine().state_data();
      for (size_t r = 0; r < nf; ++r) {
        if (std::bit_cast<uint64_t>(st[r]) !=
            std::bit_cast<uint64_t>(a.fold[r * kBatchLanes + i])) {
          telemetry::metrics().jit_verify_mismatches.inc();
          break;
        }
      }
    }
    return;
  }

  // SoA execution: one grouped fold call over the arena. The lead group
  // was staged at intake and scatters during finish; later groups
  // gathered above and scatter here.
  if (g.exec == Exec::Simd) {
    lang::jit::BatchFoldFn fn =
        lanes_[g.lane[0]].flow->fold_machine().batch_fn();
    if (n % 2 != 0) {
      // Ghost lane: duplicate the last live column so the pair loop has
      // two real operands; the ghost's results are never scattered.
      dup_column(a.fold.data(), g.prog->num_folds(), n - 1, n);
      dup_column(a.vars.data(), g.prog->num_vars(), n - 1, n);
      dup_column(a.pkt.data(), lang::kNumPktFields, n - 1, n);
    }
    fn(a.fold.data(), a.pkt.data(), a.vars.data(), a.scratch.data(),
       (n + 1) / 2);
  } else {
    lang::eval_block_batch(g.prog->fold_block, a.fold.data(), a.pkt.data(),
                           a.vars.data(), a.scratch.data(), n);
  }
  if (!staged) scatter_and_judge(g, a);
}

}  // namespace ccp::datapath
